"""Process-level execution: spec-built worker agents over shard planes.

Thread workers share one interpreter, so at paper dims (400) every
serving worker fights the trainer and its siblings for the GIL.  This
module runs each worker in its **own process** while keeping the big
read-only state physically shared:

* an :class:`AgentSpec` is the picklable recipe for rebuilding an
  inference-only :class:`~repro.core.agent.REKSAgent` inside a child —
  the small trainable modules travel by value, the large frozen tables
  travel *by reference* as :class:`~repro.runtime.plane.PlaneManifest`
  entries (attached zero-copy in the child);
* the CSR adjacency is exported **one plane generation per graph-store
  shard** (:func:`export_shard_planes`): after a per-shard compaction,
  :meth:`ProcessWorkerPool.publish_tables` exports only the *dirty*
  shards into fresh segments, broadcasts a delta manifest, and workers
  re-attach just those shards (atomic facade swap via
  :meth:`~repro.core.environment.KGEnvironment.attach_shards`); the
  retired shard segments are unlinked once every worker has moved;
* :func:`_worker_main` is the child loop: attach planes, build the
  agent, then serve ``exec`` / ``swap`` / ``stage`` / ``tables``
  messages until told to stop.  Control messages always ride the
  duplex pipe; with ``transport="ring"`` (the default) the hot-path
  ``exec`` traffic instead rides a per-worker shared-memory ring pair
  (:mod:`repro.runtime.rings`) — micro-batches and result rows cross
  as flat numeric arrays with **no pickling**, and a doorbell pipe
  wakes the idle peer so nobody busy-polls a shared core.  A batch the
  ring cannot carry (oversize, un-encodable, or the ring is full)
  falls back to the pipe for that batch, counted in
  ``ProcessWorkerPool.ring_fallbacks`` — never silent, never wrong;
* a :class:`ProcessWorkerPool` owns N such children plus the plane
  generations, hands micro-batches to idle workers, broadcasts model
  swaps and adjacency changes, and **never shrinks**: dead workers are
  detected eagerly (an optional background health sweep, plus a
  liveness check before every batch route) and respawned with the
  current ledger replayed, so worker death is invisible to callers —
  a micro-batch that races a death is retried once, transparently, on
  the respawned slot (inference is idempotent).

Determinism contract: a worker rebuilt from a spec attaches the exact
shard bundles and embedding tables the parent serves, loads the exact
trainable weights, and walks with the same deterministic top-k
selection — so process-mode rankings, scores, and rendered
explanations are bit-identical to thread mode (pinned by
``tests/test_runtime.py``).
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field, replace as dc_replace
from multiprocessing.connection import wait as _mp_wait
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.agent import REKSAgent, _top_k
from repro.core.config import REKSConfig
from repro.core.environment import KGEnvironment, RolloutWorkspace
from repro.core.policy import PolicyNetwork
from repro.core.rewards import RewardComputer, RewardWeights
from repro.data.loader import collate_examples
from repro.graphstore import CSRShard, ShardTables, ShardedCSR
from repro.kg.builder import BuiltKG
from repro.kg.paths import SemanticPath, render_path
from repro.runtime.plane import (
    PlaneArena,
    PlaneManifest,
    TablePlane,
    layout_size,
)
from repro.runtime.rings import (
    RingFull,
    RingManifest,
    RingPair,
    RingUnsuitable,
    WorkerExecError,
    decode_request,
    decode_response,
    dedup_pairs,
    encode_error,
    encode_request,
    encode_response,
)
from repro.telemetry.block import BlockManifest, MetricBlock, fleet_schema
from repro.telemetry.trace import attribute_rows, span_kind_id

_SPAN_EXEC = span_kind_id("exec")
_SPAN_COLLATE = span_kind_id("collate")
_SPAN_CASCADE = span_kind_id("cascade")
# Worst-case telemetry trailer per sampled batch: header + trace echo
# + pad + (collate/walk/topk/exec) span triples.
_MAX_RESP_SPANS = 8

# Per-shard plane array names (stable across generations).
SHARD_ARRAYS = ("indptr", "rels", "tails", "degrees")
EMB_ENTITY = "emb/entity"
EMB_RELATION = "emb/relation"
# Policy parameters whose payload is plane-backed rather than shipped.
TABLE_PARAMS = ("entity_emb.weight", "relation_emb.weight")


class WorkerDied(RuntimeError):
    """A worker process exited while an operation was in flight."""


class WorkerError(RuntimeError):
    """A worker survived but the requested operation raised."""


@dataclass
class AgentSpec:
    """Picklable recipe for rebuilding an inference agent in a child.

    ``encoder`` rides along by value (its parameters are trainable and
    must match the parent exactly); the policy is rebuilt in the child
    over the plane's embedding views and then patched with
    ``policy_state`` (everything but the table parameters).
    """

    built: BuiltKG
    config: REKSConfig
    encoder: object
    policy_state: Dict[str, np.ndarray]
    model_version: int = 0
    staged: Tuple[np.ndarray, np.ndarray, np.ndarray] = field(
        default_factory=lambda: (np.zeros(0, dtype=np.int64),) * 3)

    @classmethod
    def from_agent(cls, agent: REKSAgent,
                   model_version: int = 0) -> "AgentSpec":
        policy_state = {
            name: value
            for name, value in agent.policy.state_dict().items()
            if name not in TABLE_PARAMS}
        return cls(built=agent.env.built, config=agent.config,
                   encoder=agent.encoder, policy_state=policy_state,
                   model_version=model_version,
                   staged=agent.env.staged_snapshot())


def shard_plane_key(sid: int, shard: CSRShard) -> str:
    """Content-addressed generation key of one shard plane."""
    return f"csr:{sid}:{shard.digest()}"


def export_shard_plane(sid: int, shard: CSRShard,
                       backend: str = "auto") -> TablePlane:
    """Publish one shard's bundle as its own plane generation.

    Each shard gets a private segment so a delta publish can retire
    exactly the dirty generations while clean shards' segments — and
    every worker mapping of them — stay untouched.
    """
    return TablePlane.publish(
        {name: getattr(shard.tables, name) for name in SHARD_ARRAYS},
        key=shard_plane_key(sid, shard), backend=backend,
        shard_of={name: sid for name in SHARD_ARRAYS})


def export_shard_planes(env: KGEnvironment,
                        backend: str = "auto") -> Dict[int, TablePlane]:
    """Publish every shard of ``env``'s current store (full export)."""
    store = env.csr_tables()
    return {sid: export_shard_plane(sid, shard, backend=backend)
            for sid, shard in enumerate(store.shards)}


def export_embedding_plane(agent: REKSAgent,
                           backend: str = "auto") -> TablePlane:
    """Publish the policy's entity/relation tables (one per pool)."""
    return TablePlane.publish(
        {EMB_ENTITY: agent.policy.entity_emb.weight.data,
         EMB_RELATION: agent.policy.relation_emb.weight.data},
        key="embeddings", backend=backend)


def shard_from_plane(sid: int, plane: TablePlane, start: int,
                     stop: int, epoch: int = 0) -> CSRShard:
    """Rebuild a shard over a plane's zero-copy views.

    The publisher's content digest rides in the plane key
    (``csr:<sid>:<digest>``), so the attaching side never re-hashes an
    unchanged shard.
    """
    tables = ShardTables(*(plane[name] for name in SHARD_ARRAYS))
    digest = None
    parts = plane.key.split(":")
    if len(parts) == 3 and parts[0] == "csr" and parts[1] == str(sid):
        digest = parts[2]
    return CSRShard(start, stop, tables, epoch=epoch, digest=digest)


def store_from_planes(boundaries: np.ndarray,
                      planes: Dict[int, TablePlane]) -> ShardedCSR:
    """Stitch a full set of attached shard planes into a store."""
    shards = tuple(
        shard_from_plane(sid, planes[sid], int(boundaries[sid]),
                         int(boundaries[sid + 1]))
        for sid in range(len(boundaries) - 1))
    return ShardedCSR(boundaries, shards)


def build_worker_agent(spec: AgentSpec,
                       shard_planes: Dict[int, TablePlane],
                       boundaries: np.ndarray,
                       emb_plane: TablePlane) -> REKSAgent:
    """Reconstruct the serving agent from a spec + attached planes.

    Every large array is a zero-copy plane view; only the trainable
    modules allocate.  The returned agent is eval-mode and owns a fresh
    :class:`RolloutWorkspace` (one per worker process, per the
    single-owner scratch contract).
    """
    cfg = spec.config
    env = KGEnvironment(spec.built, action_cap=cfg.action_cap,
                        seed=cfg.seed + 3,
                        tables=store_from_planes(boundaries, shard_planes))
    if spec.staged[0].size:
        env.stage_edges(*spec.staged)
    policy = PolicyNetwork(
        session_dim=cfg.dim, kg_dim=cfg.dim, state_dim=cfg.state_dim,
        entity_table=emb_plane[EMB_ENTITY],
        relation_table=emb_plane[EMB_RELATION],
        dropout=cfg.dropout, rng=np.random.default_rng(cfg.seed),
        copy_tables=False)
    policy.load_state_dict(spec.policy_state, partial=True)
    rewards = RewardComputer(
        spec.built, emb_plane[EMB_ENTITY], emb_plane[EMB_RELATION],
        weights=RewardWeights(*cfg.reward_weights), mode=cfg.reward_mode,
        gamma=cfg.gamma, rank_k=cfg.rank_k)
    agent = REKSAgent(spec.encoder, policy, env, rewards, cfg,
                      workspace=RolloutWorkspace())
    agent.eval()
    return agent


# ----------------------------------------------------------------------
# Child process loop
# ----------------------------------------------------------------------
def _walk_batch(agent: REKSAgent, examples: Sequence[tuple],
                ks: Sequence[int], workspace, max_len: int,
                span_sink: Optional[list] = None,
                candidates: Optional[Sequence[Sequence[int]]] = None,
                width: Optional[int] = None):
    """Collate + (optionally constrained) superset walk at ``max(ks)``.

    The walk and the score matrix are k-independent, so one
    ``recommend`` at the batch's max k serves every row; callers select
    each row's own k afterwards with the deterministic row-local
    :func:`_top_k`.

    ``candidates`` (one item-id list per row) turns the walk into its
    candidate-constrained cascade form: the reachability masks are
    resolved here, next to the agent, against this process's own
    attached store (the index is digest-cached per process).

    ``width`` pins the padded batch width (shared-computation callers
    pass the flush width so a miss-subset walk reproduces the full
    flush's layout bit-for-bit); ``None`` keeps the batch-max layout.
    """
    t0 = perf_counter()
    batch = collate_examples(examples, max_len, width=width)
    if span_sink is not None:
        span_sink.append((_SPAN_COLLATE, t0, perf_counter() - t0))
        workspace.spans = span_sink  # recommend appends walk/topk
    constraint = None
    if candidates is not None:
        from repro.cascade.planner import build_constraint

        casc_t0 = perf_counter()
        constraint = build_constraint(agent, candidates,
                                      agent.config.path_length)
        if span_sink is not None:
            span_sink.append((_SPAN_CASCADE, casc_t0,
                              perf_counter() - casc_t0))
    try:
        return agent.recommend(batch, k=max(ks), workspace=workspace,
                               candidates=constraint)
    finally:
        if span_sink is not None:
            workspace.spans = None


def _row_paths(rec, rows: int) -> List[dict]:
    """Group ``rec.paths`` (keyed ``(row, item)``) into one
    ``{item: (entities, relations, prob)}`` blob dict per row.

    ``_best_paths`` keeps one best path per *terminal item* regardless
    of ``k``, so each dict covers any top-k selection from its row —
    this is what makes memo entries k-agnostic.
    """
    grouped: List[dict] = [dict() for _ in range(rows)]
    for (row, item), path in rec.paths.items():
        grouped[row][int(item)] = (list(path.entities),
                                   list(path.relations),
                                   float(path.prob))
    return grouped


def _select_row(scores_row: np.ndarray, paths: dict, k: int) -> tuple:
    """One ``(items, scores, path_blobs)`` row selected at ``k`` from a
    full dense score row — bit-identical to a fresh walk's own
    selection (``_top_k`` partitions each row independently; a prefix
    slice of a larger-k ranking would not be tie-safe)."""
    ranked = _top_k(scores_row.reshape(1, -1), int(k))[0]
    items = [int(i) for i in ranked]
    return (items, [float(scores_row[i]) for i in items],
            [paths.get(i) for i in items])


def _exec_rows(agent: REKSAgent, examples: Sequence[tuple],
               ks: Sequence[int], workspace, max_len: int,
               span_sink: Optional[list] = None,
               candidates: Optional[Sequence[Sequence[int]]] = None
               ) -> List[tuple]:
    """Execute one (possibly mixed-k) micro-batch as a superset walk.

    One ``recommend`` at ``max(ks)`` serves every row; rows whose k is
    smaller re-run the deterministic row-local :func:`_top_k` selection
    on their own score row — **bit-identical** to a separate per-k
    execution (``_top_k`` partitions each row independently), unlike a
    naive prefix slice of the max-k ranking, whose tie ordering can
    depend on ``kth``.

    Each returned row is ``(items, scores, path_blobs)`` with paths as
    raw ``(entities, relations, prob)`` tuples — no repro classes, so
    rows marshal through either transport unchanged.
    """
    rec = _walk_batch(agent, examples, ks, workspace, max_len,
                      span_sink=span_sink, candidates=candidates)
    kmax = max(ks)
    rows = []
    for row, k in enumerate(ks):
        if k == kmax:
            ranked = rec.ranked_items[row]
        else:
            ranked = _top_k(rec.scores[row:row + 1], int(k))[0]
        items = [int(i) for i in ranked]
        scores = [float(rec.scores[row, i]) for i in items]
        paths = []
        for item in items:
            path = rec.paths.get((row, item))
            paths.append(
                None if path is None
                else (list(path.entities), list(path.relations),
                      float(path.prob)))
        rows.append((items, scores, paths))
    return rows


def _finish_rows(rows: Sequence[tuple], kg) -> List[tuple]:
    """Append rendered explanations: ``(items, scores, paths)`` rows
    become the ``(items, scores, paths, rendered)`` wire rows the
    server unmarshals.  ``render_path`` is deterministic in the path
    values and the KG, so rendering parent-side (ring transport) and
    worker-side (pipe transport) produce identical strings."""
    finished = []
    for items, scores, paths in rows:
        rendered = [
            "" if blob is None
            else render_path(SemanticPath(entities=blob[0],
                                          relations=blob[1],
                                          prob=blob[2]), kg)
            for blob in paths]
        finished.append((items, scores, paths, rendered))
    return finished


def _worker_main(conn, spec: AgentSpec,
                 shard_manifests: Dict[int, PlaneManifest],
                 boundaries: np.ndarray, emb_manifest: PlaneManifest,
                 untrack_shm: bool = False,
                 ring_manifest: Optional[RingManifest] = None,
                 db_req=None, db_resp=None,
                 metrics_manifest: Optional[BlockManifest] = None
                 ) -> None:
    """Entry point of one worker process.

    ``untrack_shm`` stays False for pool-started workers (fork and
    spawn children share the publisher's resource tracker); it exists
    for embedders that run this loop from a foreign interpreter whose
    private tracker would adopt — and later unlink — the live planes.

    With a ``ring_manifest`` the worker also attaches its request /
    response ring pair and serves ``exec`` traffic from it: it blocks
    in ``connection.wait`` on the control pipe *and* the request
    doorbell, so a message on either wakes it and neither side ever
    spins on an idle shared core.
    """
    import traceback

    shard_planes = {sid: TablePlane.attach(manifest, untrack=untrack_shm)
                    for sid, manifest in shard_manifests.items()}
    emb_plane = TablePlane.attach(emb_manifest, untrack=untrack_shm)
    ring = (RingPair.attach(ring_manifest, untrack=untrack_shm)
            if ring_manifest is not None else None)
    metrics = (MetricBlock.attach(metrics_manifest, untrack=untrack_shm,
                                  writer=True)
               if metrics_manifest is not None else None)
    agent = build_worker_agent(spec, shard_planes, boundaries, emb_plane)
    version = spec.model_version
    workspace = agent.workspace
    # The workspace carries the metric block through the walk so the
    # environment / graph store record gather + per-hop timings without
    # any global sink (single-owner scratch contract extends to it).
    workspace.metrics = metrics
    max_len = agent.config.max_session_length
    # Walk memo: worker-resident (the full score rows it stores are far
    # too large for the response slots — memoizing here keeps the
    # numeric outputs next to the matrices that produced them).  Keyed
    # by version + environment fingerprint, both maintained below.
    from repro.serving.memo import WalkMemo

    memo = WalkMemo(int(getattr(spec.config, "serve_walk_memo_size",
                                0) or 0))
    memo_evictions_seen = 0
    store_token = agent.env.fingerprint()
    # Whether this worker has ever built a cascade constraint — the
    # trigger for pre-warming the reachability index after a "tables"
    # re-attach (a config-independent signal, unlike the provider knob).
    saw_candidates = False
    spin_us = float(getattr(spec.config, "serve_ring_spin_us", 0.0)
                    or 0.0)

    def run_exec(examples, ks, traces, candidates=None, dedup=None
                 ) -> Tuple[list, list, list, list]:
        """Execute + instrument one batch; returns (rows, spans,
        sampled trace-id echo, per-row records).

        With ``dedup`` (the parent's in-flush collapse) and/or a live
        memo, the batch takes the shared-computation path: memo-hit
        rows skip the walk entirely, the remaining rows walk as one
        superset batch, and every response row is a tie-safe
        :func:`_top_k` re-selection from a full score row — bit-
        identical to the legacy per-row path, which still runs verbatim
        when both features are off.
        """
        nonlocal memo_evictions_seen
        sampled = [t for t in traces if t] if traces else []
        if dedup is None and memo.capacity == 0:
            # Legacy path (byte-for-byte the PR 9 behavior).
            spans: List[tuple] = []
            rowrecs: List[tuple] = []
            if sampled:
                # The walk appends one per-row surviving-path census
                # per hop; attribute_rows splits the cost across rows.
                workspace.row_frontier = []
            t0 = perf_counter()
            try:
                rows = _exec_rows(agent, examples, ks, workspace,
                                  max_len,
                                  span_sink=spans if sampled else None,
                                  candidates=candidates)
            finally:
                frontier = workspace.row_frontier
                workspace.row_frontier = None
            dur = perf_counter() - t0
            if sampled:
                spans.append((_SPAN_EXEC, t0, dur))
                rowrecs = attribute_rows(traces, ks, frontier, spans)
            if metrics is not None:
                metrics.count("exec_batches_total")
                metrics.count("exec_rows_total", len(examples))
                metrics.observe("exec_seconds", dur)
                if sampled:
                    metrics.count("worker_traces_total", len(sampled))
            return rows, spans, sampled, rowrecs
        # Shared-computation path.
        n = len(examples)
        if dedup is not None:
            row_map, orig_ks = dedup
        else:
            row_map, orig_ks = list(range(n)), [int(k) for k in ks]
        u_data: List[Optional[tuple]] = [None] * n
        # Per-row numeric outputs are width-sensitive: pin every memo
        # key and miss walk to the flush's padded width so subset walks
        # and memo replays reproduce the full flush bit-for-bit.
        flush_width = max(len(list(ex[0])[-max_len:]) for ex in examples)
        keys: Optional[list] = None
        miss = list(range(n))
        if memo.capacity:
            keys = []
            miss = []
            for j in range(n):
                prefix, _target, user = examples[j]
                cand = (tuple(int(c) for c in candidates[j])
                        if candidates is not None else None)
                mkey = WalkMemo.key(list(prefix)[-max_len:], user,
                                    cand, version, store_token,
                                    width=flush_width)
                keys.append(mkey)
                entry = memo.get(mkey)
                if entry is None:
                    miss.append(j)
                else:
                    u_data[j] = entry
        spans = []
        rowrecs = []
        t0 = perf_counter()
        if miss:
            walk_traces = None
            if sampled:
                # One representative trace per walked row: the first
                # sampled original row in its duplicate group (memo-hit
                # rows did no walk, so they honestly get no row span).
                rep = [0] * n
                for i, u in enumerate(row_map):
                    if traces[i] and not rep[u]:
                        rep[u] = int(traces[i])
                walk_traces = [rep[j] for j in miss]
                workspace.row_frontier = []
            miss_examples = [examples[j] for j in miss]
            miss_ks = [int(ks[j]) for j in miss]
            miss_cands = ([candidates[j] for j in miss]
                          if candidates is not None else None)
            try:
                rec = _walk_batch(agent, miss_examples, miss_ks,
                                  workspace, max_len,
                                  span_sink=spans if sampled else None,
                                  candidates=miss_cands,
                                  width=flush_width)
            finally:
                frontier = workspace.row_frontier
                workspace.row_frontier = None
            walk_dur = perf_counter() - t0
            grouped = _row_paths(rec, len(miss))
            for idx, j in enumerate(miss):
                entry = (rec.scores[idx].copy(), grouped[idx])
                u_data[j] = entry
                if keys is not None:
                    memo.put(keys[j], entry)
            memo.note_walk_cost(len(miss), walk_dur)
            if sampled:
                spans.append((_SPAN_EXEC, t0, walk_dur))
                rowrecs = attribute_rows(walk_traces, miss_ks,
                                         frontier, spans)
        if dedup is not None:
            out_plan, _row_pair = dedup_pairs(row_map, orig_ks)
        else:
            out_plan = [(j, int(ks[j])) for j in range(n)]
        rows = [_select_row(u_data[u][0], u_data[u][1], k)
                for u, k in out_plan]
        dur = perf_counter() - t0
        if metrics is not None:
            metrics.count("exec_batches_total")
            metrics.count("exec_rows_total", len(miss))
            metrics.observe("exec_seconds", dur)
            if sampled:
                metrics.count("worker_traces_total", len(sampled))
            if memo.capacity:
                if len(miss) < n:
                    metrics.count("walk_memo_hits_total", n - len(miss))
                if miss:
                    metrics.count("walk_memo_misses_total", len(miss))
                fresh_evictions = memo.evictions - memo_evictions_seen
                if fresh_evictions:
                    metrics.count("walk_memo_evictions_total",
                                  fresh_evictions)
                    memo_evictions_seen = memo.evictions
                metrics.gauge("walk_seconds_saved_total",
                              memo.seconds_saved)
        return rows, spans, sampled, rowrecs

    def serve_ring_payload(payload) -> None:
        nonlocal saw_candidates
        try:
            examples, ks, traces, candidates, dedup = (
                decode_request(payload))
            if candidates is not None:
                saw_candidates = True
            rows, spans, sampled, rowrecs = run_exec(
                examples, ks, traces, candidates, dedup)
            ring.post_response(encode_response(version, rows,
                                               spans=spans,
                                               traces=sampled,
                                               rowrecs=rowrecs))
        except Exception:
            ring.post_response(encode_error(
                traceback.format_exc(),
                ring.manifest.resp_slot_bytes))
        db_resp.send_bytes(b"\x01")

    def serve_ring_request() -> None:
        # The doorbell byte is consumed by the caller; the request is
        # already published (the parent posts payload-then-doorbell),
        # so a short sequence-number poll always finds it.
        payload = ring.poll_request(spin=4096)
        if payload is None:  # pragma: no cover - protocol violation
            raise RuntimeError("ring doorbell without a published slot")
        serve_ring_payload(payload)

    def prewarm_reachability() -> None:
        """Rebuild the cascade reachability index for the just-attached
        store off the request path (daemon thread; a racing request
        building the same index concurrently is benign — both insert
        the same digest-keyed entry)."""
        from repro.cascade.reachability import get_index

        try:
            get_index(agent.env, agent.config.path_length,
                      metrics=metrics)
        except Exception:  # pragma: no cover - prewarm is best-effort
            pass

    try:
        while True:
            if ring is not None:
                if spin_us > 0:
                    # Adaptive spin-then-block: briefly poll the ring's
                    # sequence word before paying the select() wakeup.
                    # A spin hit must still drain its doorbell byte —
                    # the parent sends it right after publishing, so
                    # the strict one-byte-per-message lockstep holds.
                    payload = None
                    deadline = perf_counter() + spin_us * 1e-6
                    while payload is None and perf_counter() < deadline:
                        payload = ring.poll_request(spin=64)
                        if payload is None and conn.poll(0):
                            break
                    if payload is not None:
                        db_req.recv_bytes()
                        serve_ring_payload(payload)
                        continue
                ready = _mp_wait([conn, db_req])
                if db_req in ready:
                    db_req.recv_bytes()
                    serve_ring_request()
                if conn not in ready:
                    continue
            message = conn.recv()
            op = message[0]
            try:
                if op == "exec":
                    examples, ks = message[1], message[2]
                    traces = message[3] if len(message) > 3 else None
                    candidates = (message[4] if len(message) > 4
                                  else None)
                    dedup = message[5] if len(message) > 5 else None
                    if candidates is not None:
                        saw_candidates = True
                    if isinstance(ks, int):
                        ks = [ks] * len(examples)
                    rows, spans, sampled, rowrecs = run_exec(
                        examples, ks, traces, candidates, dedup)
                    # Rows cross unrendered on both transports; the
                    # parent renders lazily behind the cache (see
                    # serving.server.ServedResult).
                    conn.send(("ok", version, rows, spans, sampled,
                               rowrecs))
                elif op == "swap":
                    _, new_version, state = message
                    # Partial: frozen plane-backed tables are not
                    # shipped (see ProcessWorkerPool.swap).
                    agent.load_state_dict(state, partial=True)
                    version = int(new_version)
                    conn.send(("ok", version))
                elif op == "stage":
                    _, heads, rels, tails = message
                    added = agent.env.stage_edges(heads, rels, tails)
                    store_token = agent.env.fingerprint()
                    conn.send(("ok", added))
                elif op == "tables":
                    # Delta re-attach: only the dirty shards arrive.
                    _, manifests, staged = message
                    store = agent.env.csr_tables()
                    fresh = {sid: TablePlane.attach(manifest,
                                                    untrack=untrack_shm)
                             for sid, manifest in manifests.items()}
                    updates = {
                        sid: shard_from_plane(
                            sid, plane, store.shards[sid].start,
                            store.shards[sid].stop,
                            epoch=store.shards[sid].epoch + 1)
                        for sid, plane in fresh.items()}
                    agent.env.attach_shards(updates, staged)
                    for sid, plane in fresh.items():
                        shard_planes[sid].close()
                        shard_planes[sid] = plane
                    store_token = agent.env.fingerprint()
                    if saw_candidates:
                        threading.Thread(target=prewarm_reachability,
                                         daemon=True).start()
                    conn.send(("ok", agent.env.fingerprint()))
                elif op == "ping":
                    conn.send(("ok", version))
                elif op == "stop":
                    conn.send(("ok", version))
                    return
                else:
                    conn.send(("err", f"unknown op {op!r}"))
            except Exception:
                # Operation-level failure: report and keep serving.
                conn.send(("err", traceback.format_exc()))
    except (EOFError, KeyboardInterrupt):  # parent went away
        pass
    finally:
        if ring is not None:
            ring.close()
        if metrics is not None:
            metrics.close()
        for plane in shard_planes.values():
            plane.close()
        emb_plane.close()


# ----------------------------------------------------------------------
# Parent-side pool
# ----------------------------------------------------------------------
class _Worker:
    """One child process plus its transports; at most one op in flight.

    Control messages (swap / stage / tables / ping / stop — and any
    ``exec`` the ring cannot carry) ride the duplex pickle pipe; with
    ``transport="ring"`` hot-path ``exec`` batches ride the worker's
    shared-memory ring pair, with a simplex **doorbell pipe** per
    direction carrying a single raw byte per message so the idle peer
    blocks in ``select`` instead of polling.  One lock serializes both
    transports, so a broadcast can never interleave with an in-flight
    micro-batch on the same worker regardless of which road the batch
    took.
    """

    def __init__(self, context, spec: AgentSpec,
                 shard_manifests: Dict[int, PlaneManifest],
                 boundaries: np.ndarray, emb_manifest: PlaneManifest,
                 name: str, index: int, untrack_shm: bool,
                 transport: str = "pipe",
                 metrics_manifest: Optional[BlockManifest] = None
                 ) -> None:
        self.index = index
        self._spin_us = float(getattr(spec.config, "serve_ring_spin_us",
                                      0.0) or 0.0)
        self._lock = threading.Lock()
        self.conn, child_conn = context.Pipe(duplex=True)
        self.ring: Optional[RingPair] = None
        self._db_req = self._db_resp = None
        ring_manifest = None
        child_db_req = child_db_resp = None
        if transport == "ring":
            self.ring = RingPair.create()
            ring_manifest = self.ring.manifest
            # Doorbells: parent -> child for requests, child -> parent
            # for responses (recv end first from Pipe(duplex=False)).
            child_db_req, self._db_req = context.Pipe(duplex=False)
            self._db_resp, child_db_resp = context.Pipe(duplex=False)
        self.process = context.Process(
            target=_worker_main,
            args=(child_conn, spec, shard_manifests, boundaries,
                  emb_manifest, untrack_shm, ring_manifest,
                  child_db_req, child_db_resp, metrics_manifest),
            name=name, daemon=True)
        self.process.start()
        child_conn.close()  # parent keeps only its end
        if child_db_req is not None:
            child_db_req.close()
            child_db_resp.close()

    def request(self, message: tuple):
        """Round-trip one pipe message; raises WorkerDied/WorkerError."""
        with self._lock:
            try:
                self.conn.send(message)
                reply = self.conn.recv()
            except (EOFError, BrokenPipeError, OSError) as exc:
                raise WorkerDied(
                    f"worker {self.process.name} (pid "
                    f"{self.process.pid}) died during {message[0]!r}"
                ) from exc
        if reply[0] == "err":
            raise WorkerError(reply[1])
        return reply[1:]

    def exec_batch(self, examples: Sequence[tuple], ks: Sequence[int],
                   max_len: int, resp_bound: int,
                   traces: Optional[Sequence[int]] = None,
                   candidates: Optional[Sequence[Sequence[int]]] = None,
                   dedup: Optional[Tuple[Sequence[int],
                                         Sequence[int]]] = None
                   ) -> Tuple[str, int, list, list, list, list]:
        """Run one micro-batch over the best transport available.

        Returns ``(used, version, rows, spans, trace_echo, rowrecs)``
        where ``used`` is ``"ring"``, ``"pipe"`` (this worker has no
        ring), or ``"fallback"`` (it has one, but this batch could not
        ride it — oversize payload, un-encodable values, or a full
        ring).  Rows are unrendered 3-tuples on every transport;
        ``spans`` are the worker's ``(kind_id, t0, dur)`` batch spans,
        ``trace_echo`` the sampled ids it attributed them to, and
        ``rowrecs`` the per-row ``(trace, widths, walk_s, topk_s)``
        attribution records (all empty when no row was sampled).

        ``dedup`` is the in-flush ``(row_map, orig_ks)`` collapse map:
        ``examples``/``ks``/``candidates`` then carry the unique rows
        only, ``traces`` stays per original row, and the worker answers
        one row per canonical ``(unique, k)`` pair (the caller fans
        them back out — see :func:`repro.runtime.rings.dedup_pairs`).
        """
        used = "pipe"
        if self.ring is not None:
            payload = None
            try:
                payload = encode_request(examples, ks, max_len,
                                         traces=traces,
                                         candidates=candidates,
                                         dedup=dedup)
                if (len(payload) > self.ring.manifest.req_slot_bytes
                        or resp_bound
                        > self.ring.manifest.resp_slot_bytes):
                    raise RingUnsuitable("payload exceeds slot capacity")
            except RingUnsuitable:
                used = "fallback"
            if payload is not None and used != "fallback":
                with self._lock:
                    try:
                        self.ring.post_request(payload)
                    except RingFull:
                        used = "fallback"
                    else:
                        self._db_req.send_bytes(b"\x01")
                        raw = self._await_ring_response()
                        try:
                            version, rows, spans, echo, rowrecs = (
                                decode_response(raw))
                        except WorkerExecError as exc:
                            raise WorkerError(str(exc)) from None
                        return ("ring", version, rows, spans, echo,
                                rowrecs)
        message = ("exec", list(examples), list(ks))
        traces_slot = (list(traces) if traces is not None and any(traces)
                       else None)
        if dedup is not None:
            # Positional slots 3..5; dedup forces its predecessors.
            message += (traces_slot,
                        None if candidates is None
                        else [list(row) for row in candidates],
                        ([int(u) for u in dedup[0]],
                         [int(k) for k in dedup[1]]))
        elif candidates is not None:
            # The candidates slot is positional (message[4]), so the
            # traces slot must be present — None when nothing sampled.
            message += (traces_slot, [list(row) for row in candidates])
        elif traces_slot:
            message += (traces_slot,)
        version, rows, spans, echo, rowrecs = self.request(message)
        return used, version, rows, spans, echo, rowrecs

    def _await_ring_response(self) -> bytes:
        """Spin briefly (``serve_ring_spin_us``), then block on the
        response doorbell (or the child's death).

        Strict accounting — exactly one doorbell byte per response —
        keeps the ring tickets and the doorbell pipe in lockstep, so a
        wake always finds its slot published (the worker posts the
        payload before ringing).  A spin hit still drains its doorbell
        byte: the worker sends it right after publishing, so the
        ``recv_bytes`` below is at worst a momentary wait — and an
        EOF there means the child died between publishing and ringing.
        """
        if self._spin_us > 0:
            deadline = perf_counter() + self._spin_us * 1e-6
            while perf_counter() < deadline:
                payload = self.ring.poll_response(spin=64)
                if payload is None:
                    continue
                try:
                    self._db_resp.recv_bytes()
                except (EOFError, OSError) as exc:
                    raise WorkerDied(
                        f"worker {self.process.name} (pid "
                        f"{self.process.pid}) died mid-batch") from exc
                self.ring.note_response_consumed()
                return payload
        while True:
            try:
                ready = _mp_wait([self._db_resp, self.process.sentinel])
            except OSError as exc:  # pragma: no cover - defensive
                raise WorkerDied(
                    f"worker {self.process.name} lost its doorbell"
                ) from exc
            if self._db_resp in ready:
                try:
                    self._db_resp.recv_bytes()
                except (EOFError, OSError) as exc:
                    raise WorkerDied(
                        f"worker {self.process.name} (pid "
                        f"{self.process.pid}) died mid-batch") from exc
                payload = self.ring.poll_response(spin=4096)
                if payload is None:  # pragma: no cover - protocol bug
                    raise WorkerDied(
                        f"worker {self.process.name} rang with no "
                        f"published response slot")
                self.ring.note_response_consumed()
                return payload
            raise WorkerDied(
                f"worker {self.process.name} (pid {self.process.pid}) "
                f"died during 'exec'")

    def close_transports(self) -> None:
        for conn in (self.conn, self._db_req, self._db_resp):
            if conn is None:
                continue
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        if self.ring is not None:
            self.ring.unlink()

    def shutdown(self, timeout: float = 5.0) -> None:
        try:
            self.request(("stop",))
        except (WorkerDied, WorkerError):
            pass
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - stuck child
            self.process.terminate()
            self.process.join(timeout)
        self.close_transports()


def resolve_context(name: str = "auto"):
    """Pick a multiprocessing start method.

    ``auto`` prefers ``fork`` only on Linux (cheap bootstrap, inherits
    the parent's imports); elsewhere it picks ``spawn`` — macOS lists
    fork but CPython switched its default away from it because forking
    a process that uses system frameworks is crash-prone.  ``spawn``
    works everywhere because every spec component is picklable, but
    pays a fresh-interpreter import per worker.  Explicit names are
    honored as given.  See the runtime README for the full caveat
    list (including respawn-forks from an already-threaded parent).
    """
    import multiprocessing as mp
    import sys as _sys

    if name == "auto":
        name = ("fork" if _sys.platform.startswith("linux")
                and "fork" in mp.get_all_start_methods() else "spawn")
    if name not in mp.get_all_start_methods():
        raise ValueError(f"start method {name!r} unavailable "
                         f"(have {mp.get_all_start_methods()})")
    return mp.get_context(name)


class ProcessWorkerPool:
    """Fixed-size pool of process workers over shared shard planes.

    The pool owns one embedding plane (frozen tables never change) and
    one plane generation **per graph-store shard** (dirty ones replaced
    by :meth:`publish_tables` after a compaction).  Broadcast
    operations (``swap`` / ``stage_edges`` / ``publish_tables``)
    serialize against in-flight executions per worker, and their
    effects are recorded so a respawned worker can be bootstrapped back
    to the pool's current state.

    ``health_interval_s`` arms a background sweep that respawns dead
    workers between batches (eager death detection); independent of the
    sweep, :meth:`execute` checks liveness before routing and retries a
    batch once on a respawned slot, so a worker death never surfaces to
    a caller as a failed future.
    """

    def __init__(self, agent: REKSAgent, workers: int,
                 mp_context: str = "auto", plane_backend: str = "auto",
                 model_version: int = 0,
                 health_interval_s: Optional[float] = None,
                 transport: str = "ring",
                 metrics_registry=None,
                 metrics_block=None,
                 walk_memo_size: Optional[int] = None,
                 ring_spin_us: Optional[float] = None) -> None:
        if workers < 1:
            raise ValueError(f"need >= 1 worker, got {workers}")
        if transport not in ("pipe", "ring"):
            raise ValueError(
                f"transport must be 'pipe' or 'ring', got {transport!r}")
        self._context = resolve_context(mp_context)
        self._spec = AgentSpec.from_agent(agent, model_version=model_version)
        # Worker-resident knobs ride the spec's config (no wire change);
        # explicit overrides beat whatever the agent config carries.
        overrides = {}
        if walk_memo_size is not None:
            overrides["serve_walk_memo_size"] = int(walk_memo_size)
        if ring_spin_us is not None:
            overrides["serve_ring_spin_us"] = float(ring_spin_us)
        if overrides:
            self._spec.config = dc_replace(self._spec.config, **overrides)
        self._backend = plane_backend
        if transport == "ring":
            # Probe once: a host without usable POSIX shared memory
            # (rings require it even when the planes fell back to
            # mmap) serves over the pipe instead of failing.
            try:
                RingPair.create(slots=1, req_slot_bytes=64,
                                resp_slot_bytes=64).unlink()
            except (ImportError, OSError):
                transport = "pipe"
        self.transport = transport
        self._max_len = self._spec.config.max_session_length
        # Worst-case per-cell response bytes: items + scores + path_len
        # + a full-length path (2L+1 int32 nodes) + its prob.
        self._resp_cell_bytes = (
            4 + 8 + 4 + (2 * self._spec.config.path_length + 1) * 4 + 8)
        # Transport accounting (tests and the bench assert on these).
        self.ring_batches = 0
        self.pipe_batches = 0
        self.ring_fallbacks = 0
        self._counter_lock = threading.Lock()
        self._emb_plane = export_embedding_plane(agent,
                                                 backend=plane_backend)
        store = agent.env.csr_tables()
        self._boundaries = np.array(store.boundaries, dtype=np.int64)
        self._csr_planes = export_shard_planes(agent.env,
                                               backend=plane_backend)
        # Telemetry: one shared-memory metric block per worker role
        # (created by the parent's registry so retire-on-respawn folds
        # counts without double counting), plus an optional
        # parent-written block for the pool's own transport counters.
        self._metrics_registry = metrics_registry
        self._metrics = metrics_block
        self._metrics_schema = fleet_schema(
            num_shards=len(self._csr_planes),
            hops=self._spec.config.path_length)
        # Double-buffered delta publish: each dirty-shard generation is
        # written into that shard's *spare* arena and flipped live, so
        # steady state re-publishes allocate zero new segments.
        # _shard_arenas maps sid -> the arena backing its live plane
        # (absent while the live plane is still the initial one-shot
        # export); _spare_arenas holds the write target for the next
        # publish of that shard.
        self._shard_arenas: Dict[int, PlaneArena] = {}
        self._spare_arenas: Dict[int, PlaneArena] = {}
        self._shard_digests = {sid: shard.digest()
                               for sid, shard in enumerate(store.shards)}
        self._csr_key = agent.env.fingerprint()
        # Current-state ledger for respawn bootstrap.
        self._version = int(model_version)
        self._swap_state: Optional[dict] = None
        # Frozen parameters are plane-backed in every worker; swaps
        # drop them from the broadcast (partial load child-side) so a
        # hot swap ships only the trainable weights.
        self._frozen_keys = {
            name for name, param in agent.named_parameters()
            if not param.requires_grad}
        self._staged_log: List[tuple] = []
        self.generation = 0
        self.respawns = 0
        # Failed respawn attempts from the health sweep (observable
        # signal that recovery itself is broken, e.g. fd exhaustion).
        self.health_failures = 0
        # What the last delta publish actually shipped (manifest-level
        # accounting: dirty shard ids + exported bytes) — benches and
        # tests assert delta cost against it.
        self.last_publish: Optional[dict] = None
        # One re-entrant lock serializes everything that touches the
        # state ledger: broadcasts (which mutate it first, then
        # deliver) and respawns (which replay it).  Re-entrant so a
        # broadcast that finds a corpse can respawn under its own
        # lock; execute() only takes it on the death path, never per
        # batch.
        self._state_lock = threading.RLock()
        # Serializes whole publishes so the slow segment export can run
        # outside the state lock without two publishers interleaving.
        self._publish_lock = threading.Lock()
        self._closed = False
        self.size = workers
        # Workers never untrack: multiprocessing children (fork AND
        # spawn) share the parent's resource tracker — the fd rides in
        # the spawn preparation data — so their attach registrations
        # land in the owner's tracker and the owner's unlink cleans up.
        # TablePlane.attach(untrack=True) exists for *foreign*
        # processes (not started by this interpreter's multiprocessing)
        # whose private tracker would adopt and kill the segments.
        self._untrack_shm = False
        self._workers = [self._spawn(i) for i in range(workers)]
        self._idle: "queue.LifoQueue[_Worker]" = queue.LifoQueue()
        for worker in self._workers:
            self._idle.put(worker)
        self._health_stop = threading.Event()
        self._health_thread: Optional[threading.Thread] = None
        if health_interval_s:
            self._health_thread = threading.Thread(
                target=self._health_loop, args=(float(health_interval_s),),
                name="reks-procpool-health", daemon=True)
            self._health_thread.start()

    # ------------------------------------------------------------------
    def _spawn(self, index: int) -> _Worker:
        manifests = {sid: plane.manifest
                     for sid, plane in self._csr_planes.items()}
        metrics_manifest = None
        if self._metrics_registry is not None:
            # create_block retires any stale block under this role
            # first (final snapshot folded into the retained
            # accumulators), so a respawn re-registers a zeroed block
            # and the fleet totals never double count.
            block = self._metrics_registry.create_block(
                f"worker{index}", self._metrics_schema)
            metrics_manifest = block.manifest
        return _Worker(self._context, self._spec, manifests,
                       self._boundaries, self._emb_plane.manifest,
                       name=f"reks-procworker-{index}", index=index,
                       untrack_shm=self._untrack_shm,
                       transport=self.transport,
                       metrics_manifest=metrics_manifest)

    def _bootstrap(self, worker: _Worker) -> None:
        """Replay the pool's current state into a fresh worker."""
        for heads, rels, tails in self._staged_log:
            worker.request(("stage", heads, rels, tails))
        if self._swap_state is not None:
            worker.request(("swap", self._version, self._swap_state))

    def _respawn(self, dead: _Worker) -> _Worker:
        """Replace a dead worker's slot (the pool never shrinks).

        Idempotent per corpse: a dead worker can be observed several
        times — by the health sweep, by a broadcast walking
        ``_workers``, and by an ``execute`` that popped the stale
        object from the idle queue — and only the first observer spawns
        a replacement; later observers are handed the already-live slot
        occupant.  Runs under the state lock, and broadcasts mutate the
        ledger *before* delivering, so a worker respawned mid-broadcast
        is bootstrapped onto the ledger state that broadcast is
        delivering — never one behind.
        """
        with self._state_lock:
            current = self._workers[dead.index]
            if current is not dead:
                return current  # already replaced by another observer
            try:
                dead.process.join(0.1)
            except OSError:  # pragma: no cover - defensive
                pass
            dead.close_transports()  # also retires the corpse's ring
            fresh = self._spawn(dead.index)
            self._bootstrap(fresh)
            self._workers[dead.index] = fresh
            self.respawns += 1
            if self._metrics is not None:
                self._metrics.count("worker_respawns_total")
            return fresh

    def _health_loop(self, interval: float) -> None:
        """Background sweep: respawn dead workers between batches.

        Uses the cheap ``exitcode`` poll (no pipe round-trip, so it
        never contends with an in-flight micro-batch on a live
        worker); a corpse found here is replaced before the next batch
        is routed to its slot.
        """
        while not self._health_stop.wait(interval):
            if self._closed:
                return
            for slot in range(self.size):
                worker = self._workers[slot]
                if worker.process.exitcode is not None:
                    try:
                        self._respawn(worker)
                    except Exception:  # pragma: no cover - last resort
                        # Persistent respawn failure (fd exhaustion,
                        # fork errors) must stay observable: count it
                        # rather than silently retrying forever.
                        self.health_failures += 1

    # ------------------------------------------------------------------
    # Micro-batch execution
    # ------------------------------------------------------------------
    def execute(self, examples: Sequence[tuple],
                k: Union[int, Sequence[int]],
                traces: Optional[Sequence[int]] = None,
                span_sink: Optional[list] = None,
                row_sink: Optional[list] = None,
                candidates: Optional[Sequence[Sequence[int]]] = None,
                dedup: Optional[Tuple[Sequence[int],
                                      Sequence[int]]] = None
                ) -> Tuple[int, List[tuple]]:
        """Run one micro-batch on an idle worker.

        ``k`` is a single top-k for the whole batch or one per example
        (a mixed-k flush executes as one superset walk worker-side,
        each row selected at its own k — bit-identical to per-k
        execution).  Returns ``(model_version, rows)`` where the
        version is the one the worker actually executed with (a swap
        broadcast can land between submission and execution, never
        mid-batch).  Rows are **unrendered** ``(items, scores, paths)``
        3-tuples on every transport — rendering happens lazily in the
        serving layer (:func:`_finish_rows` is the eager helper).

        ``traces`` carries one sampled trace id per example (0 = not
        sampled) and rides either transport; the worker's batch spans
        come back through ``span_sink`` and its per-row attribution
        records through ``row_sink`` (both appended in place) so the
        return shape stays ``(version, rows)`` for every caller.

        ``dedup`` is the in-flush ``(row_map, orig_ks)`` collapse:
        ``examples``/``k``/``candidates`` then carry the **unique**
        rows only (each at the max k over its duplicate group) while
        ``traces`` stays per original row; the worker executes the
        uniques once, answers per canonical ``(unique, k)`` pair, and
        this parent fans the pair rows back out so callers always see
        one row per original request.

        Worker death is invisible here: a corpse popped from the idle
        queue is swapped for its respawned slot occupant before
        routing, and a batch that races a death mid-flight is
        re-executed once on a fresh respawn (idempotent — pure
        inference).  :class:`WorkerDied` escapes only if the respawned
        worker dies too.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        examples = list(examples)
        if isinstance(k, (int, np.integer)):
            ks = [int(k)] * len(examples)
        else:
            ks = [int(v) for v in k]
            if len(ks) != len(examples):
                raise ValueError(
                    f"{len(examples)} examples but {len(ks)} ks")
        row_pair = None
        if dedup is not None:
            dedup = ([int(u) for u in dedup[0]],
                     [int(v) for v in dedup[1]])
            pairs, row_pair = dedup_pairs(*dedup)
            resp_ks = [k for _unique, k in pairs]
        else:
            resp_ks = ks
        n_sampled = sum(1 for t in traces if t) if traces else 0
        resp_bound = (64 + 4 * len(resp_ks)
                      + sum(resp_ks) * self._resp_cell_bytes)
        if n_sampled:
            # Telemetry trailer: header + trace echo + pad + spans,
            # then the per-row section (header + int records + pad +
            # two f64 durations per sampled row).
            hops = self._spec.config.path_length
            resp_bound += 16 + 4 * n_sampled + 24 * _MAX_RESP_SPANS
            resp_bound += (16 + 4 * (1 + hops) * n_sampled
                           + 16 * n_sampled)
        worker = self._idle.get()
        try:
            if worker.process.exitcode is not None:
                # Died while idle (or a stale corpse whose slot the
                # health sweep already refilled): route to the live
                # occupant instead of failing the batch.
                worker = self._respawn(worker)
            try:
                used, version, rows, spans, echo, rowrecs = (
                    worker.exec_batch(examples, ks, self._max_len,
                                      resp_bound, traces, candidates,
                                      dedup))
            except WorkerDied:
                worker = self._respawn(worker)
                try:
                    used, version, rows, spans, echo, rowrecs = (
                        worker.exec_batch(examples, ks, self._max_len,
                                          resp_bound, traces,
                                          candidates, dedup))
                except WorkerDied:
                    worker = self._respawn(worker)
                    raise
        finally:
            self._idle.put(worker)
        if row_pair is not None:
            # Fan the canonical (unique, k) pair rows back out: one row
            # per original request, duplicates sharing the pair's row.
            rows = [rows[p] for p in row_pair]
        with self._counter_lock:
            if used == "ring":
                self.ring_batches += 1
            else:
                self.pipe_batches += 1
                if used == "fallback":
                    self.ring_fallbacks += 1
        if self._metrics is not None:
            self._metrics.count("ring_batches_total"
                                if used == "ring"
                                else "pipe_batches_total")
            if used == "fallback":
                self._metrics.count("ring_fallbacks_total")
        if span_sink is not None and spans:
            span_sink.extend(spans)
        if row_sink is not None and rowrecs:
            row_sink.extend(rowrecs)
        return int(version), rows

    # ------------------------------------------------------------------
    # Broadcasts
    # ------------------------------------------------------------------
    def _deliver(self, message: tuple) -> List[tuple]:
        """Deliver one message to every live slot (state lock held).

        Each worker is locked for its round-trip, so a broadcast never
        interleaves with a micro-batch on the same worker; different
        workers may see the broadcast at different batch boundaries
        (same contract as thread mode, where each batch reads the live
        agent pointer once).  Callers mutate the state ledger *before*
        delivering, which makes failure handling convergent: a worker
        that died — or errored applying the op, leaving its state
        unknowable — is replaced, and the respawn bootstrap replays
        the already-updated ledger, so every slot ends on the new
        state and the pool never serves mixed generations.
        """
        replies = []
        for slot in range(self.size):
            worker = self._workers[slot]
            try:
                replies.append(worker.request(message))
            except WorkerDied:
                self._respawn(worker)  # bootstrap replays the ledger
                replies.append(("bootstrapped",))
            except WorkerError:
                # The op failed in a live worker (e.g. a mid-apply
                # exception): its state no longer matches the ledger.
                # Replace it; the bootstrap replays the ledger.
                try:
                    worker.process.terminate()
                    worker.process.join(5.0)
                except OSError:  # pragma: no cover - defensive
                    pass
                self._respawn(worker)
                replies.append(("bootstrapped",))
        return replies

    def swap(self, version: int, state: dict) -> None:
        """Roll every worker to checkpoint ``state`` tagged ``version``.

        Frozen (plane-backed) parameters are dropped from the
        broadcast — at paper dims they dominate the checkpoint, every
        worker already reads them from shared memory, and a frozen
        table never changes between checkpoints of one stack — so the
        pipe carries only the trainable weights.
        """
        state = {key: value for key, value in state.items()
                 if key not in self._frozen_keys}
        with self._state_lock:
            self._version = int(version)
            self._swap_state = state
            self._deliver(("swap", int(version), state))

    def stage_edges(self, heads, rels, tails) -> int:
        """Stage overlay edges in every worker environment."""
        heads = np.asarray(heads, dtype=np.int64)
        rels = np.asarray(rels, dtype=np.int64)
        tails = np.asarray(tails, dtype=np.int64)
        with self._state_lock:
            self._staged_log.append((heads, rels, tails))
            replies = self._deliver(("stage", heads, rels, tails))
        for reply in replies:
            if reply and reply[0] != "bootstrapped":
                return int(reply[0])
        return 0

    def publish_tables(self, env: KGEnvironment) -> str:
        """Delta-publish ``env``'s current store to every worker.

        Compares each shard's content digest against the generation the
        pool last exported and ships **only the dirty shards**: fresh
        segments are published per dirty shard, the delta manifest is
        broadcast, workers re-attach just those shards (clearing only
        their overlay slices — see
        :meth:`~repro.core.environment.KGEnvironment.attach_shards` —
        and replaying ``env``'s still-staged edges for them), and the
        retired backing flips to the shard's spare arena (or, for the
        initial one-shot export, is unlinked) once every worker has
        moved.  With no dirty shard this is a no-op returning the
        current generation key.

        Segment accounting rides in
        ``last_publish["segments_allocated"]``: the first two publishes
        of a shard each allocate one arena (the double buffer priming
        itself); from the third on, the write lands in the spare retired
        two generations ago — which every worker un-mapped before
        acking the previous broadcast — and the steady-state count is
        zero.
        """
        store = env.csr_tables()
        # One publisher at a time; the slow part — segment writes + the
        # per-shard byte copy — runs OUTSIDE the state lock so corpse
        # respawns, pings, and execute()'s recovery path never queue
        # behind a large export.  Only the ledger mutation + delivery
        # take the state lock.
        with self._publish_lock:
            with self._state_lock:
                digests = dict(self._shard_digests)
            dirty = {sid: shard for sid, shard in enumerate(store.shards)
                     if digests.get(sid) != shard.digest()}
            if not dirty:
                return self._csr_key
            staged_all = env.staged_by_shard()
            staged_dirty = {sid: staged_all[sid] for sid in dirty
                            if sid in staged_all}
            fresh: Dict[int, TablePlane] = {}
            fresh_arenas: Dict[int, PlaneArena] = {}
            segments_allocated = 0
            for sid, shard in dirty.items():
                arrays = {name: getattr(shard.tables, name)
                          for name in SHARD_ARRAYS}
                arena = self._spare_arenas.pop(sid, None)
                if arena is not None and not arena.fits(arrays):
                    # Shard outgrew its buffer; retire and re-size.
                    arena.unlink()
                    arena = None
                if arena is None:
                    # 25% headroom so ordinary delta growth keeps
                    # fitting the same arena across generations.
                    capacity = layout_size(arrays) * 5 // 4 + 64
                    arena = PlaneArena.create(capacity,
                                              backend=self._backend)
                    segments_allocated += 1
                fresh[sid] = arena.write(
                    arrays, key=shard_plane_key(sid, shard),
                    shard_of={name: sid for name in SHARD_ARRAYS})
                fresh_arenas[sid] = arena
            with self._state_lock:
                retired = {sid: self._csr_planes[sid] for sid in dirty}
                retired_arenas = {
                    sid: self._shard_arenas.pop(sid)
                    for sid in dirty if sid in self._shard_arenas}
                self._csr_planes.update(fresh)
                self._shard_arenas.update(fresh_arenas)
                self._shard_digests.update(
                    {sid: shard.digest() for sid, shard in dirty.items()})
                self._csr_key = env.fingerprint()
                # Respawn bootstrap replays the parent's full overlay
                # onto the freshly-attached store (duplicates of
                # already-staged broadcasts dedup to no-ops child-side).
                snapshot = env.staged_snapshot()
                self._staged_log = ([snapshot] if snapshot[0].size
                                    else [])
                self.generation += 1
                self.last_publish = {
                    "shards": sorted(dirty),
                    "total_shards": store.num_shards,
                    "nbytes": sum(plane.nbytes
                                  for plane in fresh.values()),
                    "segments_allocated": segments_allocated,
                    "key": self._csr_key,
                }
                self._deliver(
                    ("tables",
                     {sid: plane.manifest
                      for sid, plane in fresh.items()},
                     staged_dirty))
            # Workers detached from the retired generations in the
            # broadcast (respawned ones never attached them).  An
            # arena-backed retiree keeps its segment and becomes the
            # shard's spare — the write target of the next publish of
            # that shard; the initial one-shot export is unlinked for
            # good.
            for sid, plane in retired.items():
                if sid in retired_arenas:
                    self._spare_arenas[sid] = retired_arenas[sid]
                else:
                    plane.unlink()
        return self._csr_key

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        return self._version

    @property
    def plane_key(self) -> str:
        """Environment fingerprint of the last exported generation."""
        return self._csr_key

    @property
    def plane_nbytes(self) -> int:
        return (sum(plane.nbytes for plane in self._csr_planes.values())
                + self._emb_plane.nbytes)

    @property
    def num_shards(self) -> int:
        return len(self._csr_planes)

    def shard_manifests(self) -> Dict[int, PlaneManifest]:
        """The per-shard manifest directory of the current generation."""
        with self._state_lock:
            return {sid: plane.manifest
                    for sid, plane in self._csr_planes.items()}

    def ping(self) -> List[int]:
        """Liveness probe; returns each worker's model version.

        Dead workers are respawned (and bootstrapped to the current
        ledger) as a side effect, so a periodic ping doubles as eager
        death detection (the built-in health sweep uses the cheaper
        ``exitcode`` poll instead so it never queues behind a long
        micro-batch).
        """
        with self._state_lock:
            replies = self._deliver(("ping",))
        return [self._version if reply[0] == "bootstrapped"
                else int(reply[0]) for reply in replies]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._health_stop.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=5.0)
        for worker in self._workers:
            worker.shutdown()
        if self._metrics_registry is not None:
            # Fold final worker counts into the retained accumulators
            # (the blocks outlive their writers just long enough to be
            # read) and unlink the segments.
            for index in range(self.size):
                self._metrics_registry.retire(f"worker{index}")
        for sid, plane in self._csr_planes.items():
            if sid not in self._shard_arenas:
                plane.unlink()
        for arena in self._shard_arenas.values():
            arena.unlink()
        for arena in self._spare_arenas.values():
            arena.unlink()
        self._emb_plane.unlink()

    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ProcessWorkerPool(size={self.size}, "
                f"version={self._version}, generation={self.generation}, "
                f"shards={self.num_shards}, plane={self.plane_key!r}, "
                f"respawns={self.respawns})")
