"""Process-level execution: spec-built worker agents over a table plane.

Thread workers share one interpreter, so at paper dims (400) every
serving worker fights the trainer and its siblings for the GIL.  This
module runs each worker in its **own process** while keeping the big
read-only state physically shared:

* an :class:`AgentSpec` is the picklable recipe for rebuilding an
  inference-only :class:`~repro.core.agent.REKSAgent` inside a child —
  the small trainable modules travel by value, the large frozen tables
  travel *by reference* as :class:`~repro.runtime.plane.PlaneManifest`
  entries (attached zero-copy in the child);
* :func:`_worker_main` is the child loop: attach planes, build the
  agent, then serve ``exec`` / ``swap`` / ``stage`` / ``tables``
  messages over a duplex pipe until told to stop;
* a :class:`ProcessWorkerPool` owns N such children plus the plane
  generations, hands micro-batches to idle workers, broadcasts model
  swaps and adjacency changes, and **never shrinks**: a dead worker is
  respawned and re-bootstrapped (current tables, staged edges, and
  model version replayed) before the failure is surfaced.

Determinism contract: a worker rebuilt from a spec attaches the exact
CSR bundle and embedding tables the parent serves, loads the exact
trainable weights, and walks with the same deterministic top-k
selection — so process-mode rankings, scores, and rendered
explanations are bit-identical to thread mode (pinned by
``tests/test_runtime.py``).
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.agent import REKSAgent
from repro.core.config import REKSConfig
from repro.core.environment import _CSRTables, KGEnvironment, RolloutWorkspace
from repro.core.policy import PolicyNetwork
from repro.core.rewards import RewardComputer, RewardWeights
from repro.data.loader import collate_examples
from repro.kg.builder import BuiltKG
from repro.kg.paths import render_path
from repro.runtime.plane import PlaneManifest, TablePlane

# Plane array names (stable across generations).
CSR_ARRAYS = ("csr/indptr", "csr/rels", "csr/tails", "csr/degrees")
EMB_ENTITY = "emb/entity"
EMB_RELATION = "emb/relation"
# Policy parameters whose payload is plane-backed rather than shipped.
TABLE_PARAMS = ("entity_emb.weight", "relation_emb.weight")


class WorkerDied(RuntimeError):
    """A worker process exited while an operation was in flight."""


class WorkerError(RuntimeError):
    """A worker survived but the requested operation raised."""


@dataclass
class AgentSpec:
    """Picklable recipe for rebuilding an inference agent in a child.

    ``encoder`` rides along by value (its parameters are trainable and
    must match the parent exactly); the policy is rebuilt in the child
    over the plane's embedding views and then patched with
    ``policy_state`` (everything but the table parameters).
    """

    built: BuiltKG
    config: REKSConfig
    encoder: object
    policy_state: Dict[str, np.ndarray]
    model_version: int = 0
    staged: Tuple[np.ndarray, np.ndarray, np.ndarray] = field(
        default_factory=lambda: (np.zeros(0, dtype=np.int64),) * 3)

    @classmethod
    def from_agent(cls, agent: REKSAgent,
                   model_version: int = 0) -> "AgentSpec":
        policy_state = {
            name: value
            for name, value in agent.policy.state_dict().items()
            if name not in TABLE_PARAMS}
        return cls(built=agent.env.built, config=agent.config,
                   encoder=agent.encoder, policy_state=policy_state,
                   model_version=model_version,
                   staged=agent.env.staged_snapshot())


def export_csr_plane(env: KGEnvironment,
                     backend: str = "auto") -> TablePlane:
    """Publish the environment's current CSR bundle as a plane
    generation keyed by its fingerprint."""
    csr = env.csr_tables()
    return TablePlane.publish(
        dict(zip(CSR_ARRAYS, csr)), key=env.fingerprint(),
        backend=backend)


def export_embedding_plane(agent: REKSAgent,
                           backend: str = "auto") -> TablePlane:
    """Publish the policy's entity/relation tables (one per pool)."""
    return TablePlane.publish(
        {EMB_ENTITY: agent.policy.entity_emb.weight.data,
         EMB_RELATION: agent.policy.relation_emb.weight.data},
        key="embeddings", backend=backend)


def csr_from_plane(plane: TablePlane) -> _CSRTables:
    return _CSRTables(*(plane[name] for name in CSR_ARRAYS))


def build_worker_agent(spec: AgentSpec, csr_plane: TablePlane,
                       emb_plane: TablePlane) -> REKSAgent:
    """Reconstruct the serving agent from a spec + attached planes.

    Every large array is a zero-copy plane view; only the trainable
    modules allocate.  The returned agent is eval-mode and owns a fresh
    :class:`RolloutWorkspace` (one per worker process, per the
    single-owner scratch contract).
    """
    cfg = spec.config
    env = KGEnvironment(spec.built, action_cap=cfg.action_cap,
                        seed=cfg.seed + 3,
                        tables=csr_from_plane(csr_plane))
    if spec.staged[0].size:
        env.stage_edges(*spec.staged)
    policy = PolicyNetwork(
        session_dim=cfg.dim, kg_dim=cfg.dim, state_dim=cfg.state_dim,
        entity_table=emb_plane[EMB_ENTITY],
        relation_table=emb_plane[EMB_RELATION],
        dropout=cfg.dropout, rng=np.random.default_rng(cfg.seed),
        copy_tables=False)
    policy.load_state_dict(spec.policy_state, partial=True)
    rewards = RewardComputer(
        spec.built, emb_plane[EMB_ENTITY], emb_plane[EMB_RELATION],
        weights=RewardWeights(*cfg.reward_weights), mode=cfg.reward_mode,
        gamma=cfg.gamma, rank_k=cfg.rank_k)
    agent = REKSAgent(spec.encoder, policy, env, rewards, cfg,
                      workspace=RolloutWorkspace())
    agent.eval()
    return agent


# ----------------------------------------------------------------------
# Child process loop
# ----------------------------------------------------------------------
def _pack_rows(rec, count: int, kg) -> List[tuple]:
    """Marshal one batch of Recommendations into picklable rows.

    Each row is ``(items, scores, paths, rendered)`` with paths as raw
    ``(entities, relations, prob)`` tuples — the parent rebuilds
    :class:`~repro.kg.paths.SemanticPath` objects, so no repro classes
    cross the pipe per request.
    """
    rows = []
    for row in range(count):
        items = [int(i) for i in rec.ranked_items[row]]
        scores = [float(rec.scores[row, i]) for i in items]
        paths, rendered = [], []
        for item in items:
            path = rec.paths.get((row, item))
            if path is None:
                paths.append(None)
                rendered.append("")
            else:
                paths.append((list(path.entities), list(path.relations),
                              float(path.prob)))
                rendered.append(render_path(path, kg))
        rows.append((items, scores, paths, rendered))
    return rows


def _worker_main(conn, spec: AgentSpec, csr_manifest: PlaneManifest,
                 emb_manifest: PlaneManifest,
                 untrack_shm: bool = False) -> None:
    """Entry point of one worker process.

    ``untrack_shm`` stays False for pool-started workers (fork and
    spawn children share the publisher's resource tracker); it exists
    for embedders that run this loop from a foreign interpreter whose
    private tracker would adopt — and later unlink — the live plane.
    """
    import traceback

    csr_plane = TablePlane.attach(csr_manifest, untrack=untrack_shm)
    emb_plane = TablePlane.attach(emb_manifest, untrack=untrack_shm)
    agent = build_worker_agent(spec, csr_plane, emb_plane)
    version = spec.model_version
    workspace = agent.workspace
    max_len = agent.config.max_session_length
    kg = agent.env.built.kg
    try:
        while True:
            message = conn.recv()
            op = message[0]
            try:
                if op == "exec":
                    _, examples, k = message
                    batch = collate_examples(examples, max_len)
                    rec = agent.recommend(batch, k=k, workspace=workspace)
                    conn.send(("ok", version,
                               _pack_rows(rec, len(examples), kg)))
                elif op == "swap":
                    _, new_version, state = message
                    # Partial: frozen plane-backed tables are not
                    # shipped (see ProcessWorkerPool.swap).
                    agent.load_state_dict(state, partial=True)
                    version = int(new_version)
                    conn.send(("ok", version))
                elif op == "stage":
                    _, heads, rels, tails = message
                    added = agent.env.stage_edges(heads, rels, tails)
                    conn.send(("ok", added))
                elif op == "tables":
                    _, manifest, staged = message
                    fresh = TablePlane.attach(manifest,
                                              untrack=untrack_shm)
                    agent.env.attach_tables(csr_from_plane(fresh))
                    if staged[0].size:
                        agent.env.stage_edges(*staged)
                    csr_plane.close()
                    csr_plane = fresh
                    conn.send(("ok", agent.env.fingerprint()))
                elif op == "ping":
                    conn.send(("ok", version))
                elif op == "stop":
                    conn.send(("ok", version))
                    return
                else:
                    conn.send(("err", f"unknown op {op!r}"))
            except Exception:
                # Operation-level failure: report and keep serving.
                conn.send(("err", traceback.format_exc()))
    except (EOFError, KeyboardInterrupt):  # parent went away
        pass
    finally:
        csr_plane.close()
        emb_plane.close()


# ----------------------------------------------------------------------
# Parent-side pool
# ----------------------------------------------------------------------
class _Worker:
    """One child process plus its pipe; at most one op in flight."""

    def __init__(self, context, spec: AgentSpec,
                 csr_manifest: PlaneManifest,
                 emb_manifest: PlaneManifest, name: str,
                 index: int, untrack_shm: bool) -> None:
        self.index = index
        self._lock = threading.Lock()
        self.conn, child_conn = context.Pipe(duplex=True)
        self.process = context.Process(
            target=_worker_main,
            args=(child_conn, spec, csr_manifest, emb_manifest,
                  untrack_shm),
            name=name, daemon=True)
        self.process.start()
        child_conn.close()  # parent keeps only its end

    def request(self, message: tuple):
        """Round-trip one message; raises WorkerDied/WorkerError."""
        with self._lock:
            try:
                self.conn.send(message)
                reply = self.conn.recv()
            except (EOFError, BrokenPipeError, OSError) as exc:
                raise WorkerDied(
                    f"worker {self.process.name} (pid "
                    f"{self.process.pid}) died during {message[0]!r}"
                ) from exc
        if reply[0] == "err":
            raise WorkerError(reply[1])
        return reply[1:]

    def shutdown(self, timeout: float = 5.0) -> None:
        try:
            self.request(("stop",))
        except (WorkerDied, WorkerError):
            pass
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - stuck child
            self.process.terminate()
            self.process.join(timeout)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - defensive
            pass


def resolve_context(name: str = "auto"):
    """Pick a multiprocessing start method.

    ``auto`` prefers ``fork`` only on Linux (cheap bootstrap, inherits
    the parent's imports); elsewhere it picks ``spawn`` — macOS lists
    fork but CPython switched its default away from it because forking
    a process that uses system frameworks is crash-prone.  ``spawn``
    works everywhere because every spec component is picklable, but
    pays a fresh-interpreter import per worker.  Explicit names are
    honored as given.  See the runtime README for the full caveat
    list (including respawn-forks from an already-threaded parent).
    """
    import multiprocessing as mp
    import sys as _sys

    if name == "auto":
        name = ("fork" if _sys.platform.startswith("linux")
                and "fork" in mp.get_all_start_methods() else "spawn")
    if name not in mp.get_all_start_methods():
        raise ValueError(f"start method {name!r} unavailable "
                         f"(have {mp.get_all_start_methods()})")
    return mp.get_context(name)


class ProcessWorkerPool:
    """Fixed-size pool of process workers over shared table planes.

    The pool owns two plane generations: a per-pool embedding plane
    (frozen tables never change) and the current CSR plane (replaced by
    :meth:`publish_tables` after a compaction).  Broadcast operations
    (``swap`` / ``stage_edges`` / ``publish_tables``) serialize against
    in-flight executions per worker, and their effects are recorded so
    a respawned worker can be bootstrapped back to the pool's current
    state.
    """

    def __init__(self, agent: REKSAgent, workers: int,
                 mp_context: str = "auto", plane_backend: str = "auto",
                 model_version: int = 0) -> None:
        if workers < 1:
            raise ValueError(f"need >= 1 worker, got {workers}")
        self._context = resolve_context(mp_context)
        self._spec = AgentSpec.from_agent(agent, model_version=model_version)
        self._backend = plane_backend
        self._emb_plane = export_embedding_plane(agent,
                                                 backend=plane_backend)
        self._csr_plane = export_csr_plane(agent.env,
                                           backend=plane_backend)
        # Current-state ledger for respawn bootstrap.
        self._version = int(model_version)
        self._swap_state: Optional[dict] = None
        # Frozen parameters are plane-backed in every worker; swaps
        # drop them from the broadcast (partial load child-side) so a
        # hot swap ships only the trainable weights.
        self._frozen_keys = {
            name for name, param in agent.named_parameters()
            if not param.requires_grad}
        self._staged_log: List[tuple] = []
        self.generation = 0
        self.respawns = 0
        # One re-entrant lock serializes everything that touches the
        # state ledger: broadcasts (which mutate it first, then
        # deliver) and respawns (which replay it).  Re-entrant so a
        # broadcast that finds a corpse can respawn under its own
        # lock; execute() only takes it on the death path, never per
        # batch.
        self._state_lock = threading.RLock()
        self._closed = False
        self.size = workers
        # Workers never untrack: multiprocessing children (fork AND
        # spawn) share the parent's resource tracker — the fd rides in
        # the spawn preparation data — so their attach registrations
        # land in the owner's tracker and the owner's unlink cleans up.
        # TablePlane.attach(untrack=True) exists for *foreign*
        # processes (not started by this interpreter's multiprocessing)
        # whose private tracker would adopt and kill the segment.
        self._untrack_shm = False
        self._workers = [self._spawn(i) for i in range(workers)]
        self._idle: "queue.LifoQueue[_Worker]" = queue.LifoQueue()
        for worker in self._workers:
            self._idle.put(worker)

    # ------------------------------------------------------------------
    def _spawn(self, index: int) -> _Worker:
        return _Worker(self._context, self._spec,
                       self._csr_plane.manifest, self._emb_plane.manifest,
                       name=f"reks-procworker-{index}", index=index,
                       untrack_shm=self._untrack_shm)

    def _bootstrap(self, worker: _Worker) -> None:
        """Replay the pool's current state into a fresh worker."""
        for heads, rels, tails in self._staged_log:
            worker.request(("stage", heads, rels, tails))
        if self._swap_state is not None:
            worker.request(("swap", self._version, self._swap_state))

    def _respawn(self, dead: _Worker) -> _Worker:
        """Replace a dead worker's slot (the pool never shrinks).

        Idempotent per corpse: a dead worker can be observed twice —
        once by a broadcast walking ``_workers`` and again by an
        ``execute`` that popped the stale object from the idle queue —
        and only the first observer spawns a replacement; the second
        is handed the already-live slot occupant, which it returns to
        the idle queue in place of the corpse.  Runs under the state
        lock, and broadcasts mutate the ledger *before* delivering, so
        a worker respawned mid-broadcast is bootstrapped onto the
        ledger state that broadcast is delivering — never one behind.
        """
        with self._state_lock:
            current = self._workers[dead.index]
            if current is not dead:
                return current  # already replaced by another observer
            try:
                dead.process.join(0.1)
                dead.conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
            fresh = self._spawn(dead.index)
            self._bootstrap(fresh)
            self._workers[dead.index] = fresh
            self.respawns += 1
            return fresh

    # ------------------------------------------------------------------
    # Micro-batch execution
    # ------------------------------------------------------------------
    def execute(self, examples: Sequence[tuple], k: int
                ) -> Tuple[int, List[tuple]]:
        """Run one micro-batch on an idle worker.

        Returns ``(model_version, rows)`` where the version is the one
        the worker actually executed with (a swap broadcast can land
        between submission and execution, never mid-batch).  A dead
        worker is respawned before :class:`WorkerDied` propagates, so
        the caller fails only the in-flight batch, not the pool.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        worker = self._idle.get()
        try:
            version, rows = worker.request(("exec", list(examples), int(k)))
        except WorkerDied:
            worker = self._respawn(worker)
            raise
        finally:
            self._idle.put(worker)
        return int(version), rows

    # ------------------------------------------------------------------
    # Broadcasts
    # ------------------------------------------------------------------
    def _deliver(self, message: tuple) -> List[tuple]:
        """Deliver one message to every live slot (state lock held).

        Each worker is locked for its round-trip, so a broadcast never
        interleaves with a micro-batch on the same worker; different
        workers may see the broadcast at different batch boundaries
        (same contract as thread mode, where each batch reads the live
        agent pointer once).  Callers mutate the state ledger *before*
        delivering, which makes failure handling convergent: a worker
        that died — or errored applying the op, leaving its state
        unknowable — is replaced, and the respawn bootstrap replays
        the already-updated ledger, so every slot ends on the new
        state and the pool never serves mixed generations.
        """
        replies = []
        for slot in range(self.size):
            worker = self._workers[slot]
            try:
                replies.append(worker.request(message))
            except WorkerDied:
                self._respawn(worker)  # bootstrap replays the ledger
                replies.append(("bootstrapped",))
            except WorkerError:
                # The op failed in a live worker (e.g. a mid-apply
                # exception): its state no longer matches the ledger.
                # Replace it; the bootstrap replays the ledger.
                try:
                    worker.process.terminate()
                    worker.process.join(5.0)
                except OSError:  # pragma: no cover - defensive
                    pass
                self._respawn(worker)
                replies.append(("bootstrapped",))
        return replies

    def swap(self, version: int, state: dict) -> None:
        """Roll every worker to checkpoint ``state`` tagged ``version``.

        Frozen (plane-backed) parameters are dropped from the
        broadcast — at paper dims they dominate the checkpoint, every
        worker already reads them from shared memory, and a frozen
        table never changes between checkpoints of one stack — so the
        pipe carries only the trainable weights.
        """
        state = {key: value for key, value in state.items()
                 if key not in self._frozen_keys}
        with self._state_lock:
            self._version = int(version)
            self._swap_state = state
            self._deliver(("swap", int(version), state))

    def stage_edges(self, heads, rels, tails) -> int:
        """Stage overlay edges in every worker environment."""
        heads = np.asarray(heads, dtype=np.int64)
        rels = np.asarray(rels, dtype=np.int64)
        tails = np.asarray(tails, dtype=np.int64)
        with self._state_lock:
            self._staged_log.append((heads, rels, tails))
            replies = self._deliver(("stage", heads, rels, tails))
        for reply in replies:
            if reply and reply[0] != "bootstrapped":
                return int(reply[0])
        return 0

    def publish_tables(self, env: KGEnvironment) -> str:
        """Export ``env``'s current CSR as a new plane generation and
        re-attach every worker to it (clears their staged overlays, and
        replays ``env``'s still-staged edges, so workers land on
        exactly the parent's served adjacency).  The previous
        generation is retired once every worker has moved."""
        fresh = TablePlane.publish(
            dict(zip(CSR_ARRAYS, env.csr_tables())),
            key=env.fingerprint(), backend=self._backend)
        staged = env.staged_snapshot()
        with self._state_lock:
            previous = self._csr_plane
            self._csr_plane = fresh
            self._staged_log = ([] if not staged[0].size else [staged])
            self.generation += 1
            self._deliver(("tables", fresh.manifest, staged))
        # Workers detached from the old generation in the broadcast
        # (respawned ones never attached it); unlink reclaims the
        # segment — attached mappings, if any are still mid-close,
        # keep it alive until they drop it.
        previous.unlink()
        return fresh.key

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        return self._version

    @property
    def plane_key(self) -> str:
        return self._csr_plane.key

    @property
    def plane_nbytes(self) -> int:
        return self._csr_plane.nbytes + self._emb_plane.nbytes

    def ping(self) -> List[int]:
        """Liveness probe; returns each worker's model version.

        Dead workers are respawned (and bootstrapped to the current
        ledger) as a side effect, so a periodic ping doubles as eager
        death detection.
        """
        with self._state_lock:
            replies = self._deliver(("ping",))
        return [self._version if reply[0] == "bootstrapped"
                else int(reply[0]) for reply in replies]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.shutdown()
        self._csr_plane.unlink()
        self._emb_plane.unlink()

    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ProcessWorkerPool(size={self.size}, "
                f"version={self._version}, generation={self.generation}, "
                f"plane={self.plane_key!r}, respawns={self.respawns})")
