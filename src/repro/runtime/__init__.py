"""Shared-memory multiprocess execution plane for serving and updates.

``repro.runtime`` is the layer that lets the REKS stack run as a
**process fleet** instead of a thread pile, without copying the big
read-only state per process:

* :class:`~repro.runtime.plane.TablePlane` — one generation of the hot
  path's large read-only arrays (the sharded CSR adjacency — one plane
  per graph-store shard, so a compaction republishes only its dirty
  shards — and the frozen TransE embedding tables) exported to OS
  shared memory (or mmap'd ``.npy`` files) and re-attached as
  zero-copy NumPy views in children;
* :class:`~repro.runtime.workers.ProcessWorkerPool` — spec-rebuilt
  inference agents in child processes executing serving micro-batches
  with true parallelism, bit-identical to thread mode, with model-swap
  and adjacency broadcasts plus dead-worker respawn;
* :class:`~repro.runtime.rings.RingPair` — the zero-copy exec
  dataplane: fixed-slot shared-memory request/response rings
  (sequence-number publish, flat int/float codecs, no pickling on the
  hot path) that ``transport="ring"`` pools serve micro-batches over,
  while control messages stay on the pipe;
* :class:`~repro.runtime.plane.PlaneArena` — reusable double-buffered
  backing segments so steady-state delta publishes allocate zero new
  segments;
* :class:`~repro.runtime.lease.FileLease` — advisory cross-process
  lease (stale-holder takeover) guarding shared on-disk resources such
  as the checkpoint registry.

Consumers: ``repro.serving`` (``serve_worker_mode="process"``),
``repro.online`` (subprocess updater, file-locked registry).  See
``README.md`` in this directory for lifecycle and spawn-vs-fork
caveats.
"""

from repro.runtime.lease import FileLease, LeaseTimeout
from repro.runtime.plane import PlaneArena, PlaneManifest, TablePlane
from repro.runtime.rings import (
    RingFull,
    RingManifest,
    RingPair,
    RingUnsuitable,
)
from repro.runtime.workers import (
    AgentSpec,
    ProcessWorkerPool,
    WorkerDied,
    WorkerError,
    build_worker_agent,
    export_embedding_plane,
    export_shard_plane,
    export_shard_planes,
    resolve_context,
    store_from_planes,
)

__all__ = [
    "AgentSpec",
    "FileLease",
    "LeaseTimeout",
    "PlaneArena",
    "PlaneManifest",
    "ProcessWorkerPool",
    "RingFull",
    "RingManifest",
    "RingPair",
    "RingUnsuitable",
    "TablePlane",
    "WorkerDied",
    "WorkerError",
    "build_worker_agent",
    "export_embedding_plane",
    "export_shard_plane",
    "export_shard_planes",
    "resolve_context",
    "store_from_planes",
]
