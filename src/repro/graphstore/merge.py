"""Merge kernels: fold staged edges into a capped CSR range.

:func:`merge_capped` is the one algorithm both compaction paths share.
The sharded store calls it once per *dirty* shard with entity-local
ids (delta-proportional cost); :func:`full_merge` runs it over a whole
store's flattened arrays — the pre-shard monolithic path, kept as the
differential oracle and the benchmark baseline.

Semantics (pinned by the online staging tests): edges are grouped by
head with **base edges first** within each head — the established
adjacency wins — then the action cap is re-applied by
position-within-head, so staged extras are the ones truncated on
entities already at the cap.  Within a head, staged extras keep their
staging order.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

from repro.graphstore.store import CSRShard, ShardedCSR, pack_tables

Arrays = Tuple[np.ndarray, np.ndarray, np.ndarray]


def merge_capped(n_heads: int, base_degrees: np.ndarray,
                 base_rels: np.ndarray, base_tails: np.ndarray,
                 extra_heads: np.ndarray, extra_rels: np.ndarray,
                 extra_tails: np.ndarray, action_cap: int) -> Arrays:
    """Merge base + staged edges over heads ``0..n_heads-1``.

    ``base_*`` is the existing capped adjacency (raw flat arrays, no
    sentinel slot, sorted by head); ``extra_*`` the staged overlay with
    entity-**local** head ids.  Returns ``(degrees, rels, tails)`` in
    the same raw layout, head-sorted, base-first per head, re-capped.
    """
    base_heads = np.repeat(np.arange(n_heads, dtype=np.int64),
                           base_degrees.astype(np.int64))
    heads = np.concatenate([base_heads,
                            np.asarray(extra_heads, dtype=np.int64)])
    rels = np.concatenate([base_rels.astype(np.int64),
                           np.asarray(extra_rels, dtype=np.int64)])
    tails = np.concatenate([base_tails.astype(np.int64),
                            np.asarray(extra_tails, dtype=np.int64)])
    order = np.argsort(heads, kind="stable")  # base-first per head
    heads, rels, tails = heads[order], rels[order], tails[order]
    degrees = np.bincount(heads, minlength=n_heads)
    indptr0 = np.concatenate([[0], np.cumsum(degrees)])
    # Re-apply the cap by position-within-head: the stable sort put
    # base edges first, so staged extras are the ones truncated on
    # heads already at the cap.
    pos = np.arange(heads.size, dtype=np.int64) - indptr0[heads]
    keep = pos < action_cap
    if not keep.all():
        heads, rels, tails = heads[keep], rels[keep], tails[keep]
        degrees = np.bincount(heads, minlength=n_heads)
    return degrees, rels, tails


def merge_shard(shard: CSRShard, extra_heads: np.ndarray,
                extra_rels: np.ndarray, extra_tails: np.ndarray,
                action_cap: int) -> CSRShard:
    """A fresh generation of ``shard`` with the staged edges folded in.

    ``extra_heads`` carries **global** entity ids (localized here); the
    returned shard's epoch is the old epoch + 1 and its digest cache is
    empty (fresh content hashes on first use).
    """
    tables = shard.tables
    degrees, rels, tails = merge_capped(
        shard.num_entities, tables.degrees, tables.rels[1:],
        tables.tails[1:],
        np.asarray(extra_heads, dtype=np.int64) - shard.start,
        extra_rels, extra_tails, action_cap)
    return CSRShard(shard.start, shard.stop,
                    pack_tables(degrees, rels, tails),
                    epoch=shard.epoch + 1)


def compact_store(store: ShardedCSR,
                  staged: Mapping[int, Arrays],
                  action_cap: int) -> Tuple[ShardedCSR, Dict[int, CSRShard]]:
    """Per-shard, delta-proportional compaction.

    ``staged`` maps shard index -> ``(heads, rels, tails)`` (global
    head ids).  Only those shards rebuild; every other shard rides into
    the new facade untouched.  Returns ``(new_store, updates)`` so the
    caller can see exactly which generations changed.
    """
    updates = {
        sid: merge_shard(store.shards[sid], heads, rels, tails,
                         action_cap)
        for sid, (heads, rels, tails) in sorted(staged.items())}
    return store.replace_shards(updates), updates


def full_merge(store: ShardedCSR, heads: np.ndarray, rels: np.ndarray,
               tails: np.ndarray, action_cap: int) -> Arrays:
    """Monolithic O(E) rebuild over the flattened store.

    The pre-shard compaction algorithm, byte-for-byte: the differential
    suite pins that per-shard compaction and this full rebuild agree on
    the final capped adjacency, and the benchmark reports its latency
    as the baseline the sharded path is measured against.
    """
    flat = store.to_flat()
    return merge_capped(store.num_entities, flat.degrees, flat.rels[1:],
                        flat.tails[1:], heads, rels, tails, action_cap)
