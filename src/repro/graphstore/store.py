"""The sharded CSR graph store: immutable per-shard bundles, one facade.

``repro.core.environment`` used to keep the capped KG adjacency as one
monolithic flat-CSR triple; merging a 100-edge online delta meant
concatenating and re-sorting every edge in the graph, and the runtime
plane had to re-export the whole bundle as a new shared-memory
generation afterwards.  This module splits the entity-id space into
``S`` contiguous **shards**:

* a :class:`CSRShard` owns one immutable ``(indptr, rels, tails,
  degrees)`` bundle covering the entities ``[start, stop)``, plus a
  monotonic ``epoch`` (bumped on every rebuild) and a lazily-computed
  content ``digest()`` that is cached on the immutable bundle — an
  unchanged shard hashes for free;
* a :class:`ShardedCSR` facade stitches the shards back into the query
  contract the walk hot path expects: a global ``degrees`` view
  (concatenated lazily, so compaction never pays for it), the
  zero-sentinel :meth:`gather_into` grid fill (shard-major grouped:
  contiguous sub-gathers per touched shard run, one scatter back to row
  order — never a Python loop per frontier row), and per-entity
  :meth:`slice` lookups;
* compaction becomes **delta-proportional**: only shards holding staged
  edges rebuild (see :func:`repro.graphstore.merge.merge_capped`), and
  :meth:`ShardedCSR.replace_shards` publishes a new facade that reuses
  every clean shard's arrays (and cached digest) untouched.

Shard boundaries are cut by edge mass (:func:`shard_boundaries`) from
the degree histogram the environment already materializes, so one hub
entity cannot concentrate the whole graph in a single shard.  The
``S = 1`` degenerate store is byte-for-byte the old monolithic layout
and keeps the old single-gather fast path.
"""

from __future__ import annotations

import hashlib
from typing import Mapping, NamedTuple, Optional, Tuple

import numpy as np

from repro.telemetry.block import gather_shard_counter


class ShardTables(NamedTuple):
    """One immutable CSR bundle (entity-local when owned by a shard).

    Slot 0 of the flat ``rels``/``tails`` arrays is a zero sentinel;
    real edges start at 1, so ``indptr`` is offset by one and a batched
    gather can redirect every padded cell to slot 0 with a single
    ``idx *= mask`` — bounds-safe and zero-padded in one pass.  int32
    throughout: halves the memory traffic of the per-hop gathers, and
    no KG here approaches 2^31 entities or edges.
    """

    indptr: np.ndarray   # (n_local + 1,) int32, offset by the sentinel
    rels: np.ndarray     # flat int32, slot 0 is the zero sentinel
    tails: np.ndarray    # flat int32, slot 0 is the zero sentinel
    degrees: np.ndarray  # (n_local,) int32 capped out-degrees


def pack_tables(degrees: np.ndarray, rels: np.ndarray,
                tails: np.ndarray) -> ShardTables:
    """Prepend the zero sentinel and build the offset-by-one indptr."""
    indptr = np.concatenate([[1], 1 + np.cumsum(degrees)]).astype(np.int32)
    flat_rels = np.concatenate(
        [np.zeros(1, dtype=np.int32), rels.astype(np.int32)])
    flat_tails = np.concatenate(
        [np.zeros(1, dtype=np.int32), tails.astype(np.int32)])
    return ShardTables(indptr, flat_rels, flat_tails,
                       degrees.astype(np.int32))


class CSRShard:
    """One immutable generation of the adjacency of ``[start, stop)``.

    ``epoch`` counts rebuilds of this entity range (monotonic within a
    store lineage — plane bookkeeping); ``digest()`` is a content hash
    of the bundle, computed once and cached, so generation identity is
    stable across processes (a worker attaching the same bytes from
    shared memory reports the same digest as the publisher).
    """

    __slots__ = ("start", "stop", "tables", "epoch", "_digest")

    def __init__(self, start: int, stop: int, tables: ShardTables,
                 epoch: int = 0, digest: Optional[str] = None) -> None:
        self.start = int(start)
        self.stop = int(stop)
        self.tables = tables
        self.epoch = int(epoch)
        self._digest = digest

    @property
    def num_entities(self) -> int:
        return self.stop - self.start

    @property
    def num_edges(self) -> int:
        return int(self.tables.rels.size - 1)  # minus the sentinel slot

    @property
    def nbytes(self) -> int:
        return sum(arr.nbytes for arr in self.tables)

    def digest(self) -> str:
        if self._digest is None:
            h = hashlib.sha256()
            h.update(np.int64(self.start).tobytes())
            h.update(np.int64(self.stop).tobytes())
            for array in (self.tables.indptr, self.tables.rels,
                          self.tables.tails):
                h.update(np.ascontiguousarray(array).tobytes())
            self._digest = h.hexdigest()[:16]
        return self._digest

    def __repr__(self) -> str:
        return (f"CSRShard([{self.start}, {self.stop}), "
                f"edges={self.num_edges}, epoch={self.epoch})")


def shard_boundaries(degrees: np.ndarray, num_shards: int) -> np.ndarray:
    """Contiguous entity-id cut points balancing **edge mass** per shard.

    Returns an increasing ``(S' + 1,)`` int64 array with
    ``boundaries[0] == 0`` and ``boundaries[-1] == len(degrees)``;
    ``S' <= num_shards`` (duplicate cuts collapse on graphs too small
    or too skewed to fill every shard).  Cutting by cumulative degree
    rather than entity count keeps per-shard rebuild cost even under
    the heavy-tailed degree distributions real KGs have.
    """
    n = int(degrees.size)
    if n == 0:
        return np.array([0, 0], dtype=np.int64)
    num_shards = max(1, min(int(num_shards), n))
    if num_shards == 1:
        return np.array([0, n], dtype=np.int64)
    cum = np.cumsum(degrees, dtype=np.int64)
    total = int(cum[-1])
    if total == 0:  # edgeless graph: fall back to an even entity split
        cuts = np.linspace(0, n, num_shards + 1).round().astype(np.int64)
        return np.unique(cuts)
    targets = (np.arange(1, num_shards, dtype=np.int64)
               * total) // num_shards
    cuts = np.searchsorted(cum, targets, side="left") + 1
    boundaries = np.concatenate([[0], np.clip(cuts, 0, n), [n]])
    return np.unique(boundaries).astype(np.int64)


def auto_shard_count(num_entities: int, num_edges: int) -> int:
    """Default shard count when the caller doesn't pin one.

    Floor 1: graphs below ~250k edges keep the monolithic single-gather
    hot path — sharding them wins nothing (the bench shows fixed
    per-shard overheads eat the compaction gain at that size) while a
    cross-shard frontier gather costs several sub-gathers per hop.
    Beyond that, one shard per ~250k edges keeps a dirty-shard rebuild
    small relative to E, capped at 64 so per-shard bookkeeping (plane
    segments, manifest entries) stays negligible.  Online deployments
    that want sharding on a smaller graph pin ``graph_shards``
    explicitly.
    """
    if num_entities <= 1:
        return 1
    return int(min(64, max(1, num_edges // 250_000), num_entities))


class ShardedCSR:
    """Immutable facade over one generation of every shard.

    A store is published with a single attribute swap by its owning
    environment — readers load the facade once per query and then only
    touch its (immutable) members, so a concurrent per-shard compaction
    can never hand them an ``indptr`` from one generation and ``tails``
    from another.  The global ``degrees`` view (one int32 per entity,
    so the hot path's degree gather stays a single ``np.take``) is
    concatenated **lazily** from the per-shard bundles on first access
    and cached; :meth:`replace_shards` never touches it, so compaction
    cost is O(dirty-shard edges) with no O(entities) term.
    """

    __slots__ = ("boundaries", "shards", "_degrees", "_digest")

    def __init__(self, boundaries: np.ndarray,
                 shards: Tuple[CSRShard, ...],
                 degrees: Optional[np.ndarray] = None) -> None:
        self.boundaries = np.ascontiguousarray(boundaries, dtype=np.int64)
        self.shards = tuple(shards)
        if len(self.shards) != len(self.boundaries) - 1:
            raise ValueError(
                f"{len(self.shards)} shards need "
                f"{len(self.shards) + 1} boundaries, "
                f"got {len(self.boundaries)}")
        self._degrees = degrees
        self._digest: Optional[str] = None

    @property
    def degrees(self) -> np.ndarray:
        """Global capped out-degree array, concatenated on first use.

        The concat is paid at most once per facade, by the first hot
        query — never by :meth:`replace_shards`, which publishes
        delta-cost facades on the compaction path and usually retires
        them before anything reads degrees through the old one.
        """
        if self._degrees is None:
            self._degrees = (np.concatenate(
                [shard.tables.degrees for shard in self.shards])
                if self.shards else np.zeros(0, dtype=np.int32))
        return self._degrees

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, degrees: np.ndarray, rels: np.ndarray,
              tails: np.ndarray, num_shards: int = 1) -> "ShardedCSR":
        """Slice a flat capped adjacency (head-sorted, no sentinel)
        into ``num_shards`` edge-balanced shards."""
        boundaries = shard_boundaries(degrees, num_shards)
        edge_ptr = np.concatenate([[0], np.cumsum(degrees,
                                                  dtype=np.int64)])
        shards = []
        for s in range(len(boundaries) - 1):
            lo, hi = int(boundaries[s]), int(boundaries[s + 1])
            e_lo, e_hi = int(edge_ptr[lo]), int(edge_ptr[hi])
            shards.append(CSRShard(
                lo, hi, pack_tables(degrees[lo:hi], rels[e_lo:e_hi],
                                    tails[e_lo:e_hi])))
        return cls(boundaries, tuple(shards))

    def replace_shards(self, updates: Mapping[int, CSRShard]
                       ) -> "ShardedCSR":
        """A new facade with the given shards swapped in.

        Clean shards are shared by reference (arrays *and* cached
        digests), so the cost is O(dirty-shard edges) — the global
        degrees view is *not* copied or patched here (it re-concats
        lazily on the new facade's first degree query), removing the
        last O(entities) term from the compaction path.
        """
        shards = list(self.shards)
        for sid, shard in updates.items():
            old = shards[sid]
            if (shard.start, shard.stop) != (old.start, old.stop):
                raise ValueError(
                    f"shard {sid} covers [{old.start}, {old.stop}), "
                    f"got a replacement for [{shard.start}, {shard.stop})")
            shards[sid] = shard
        return ShardedCSR(self.boundaries, tuple(shards))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def num_entities(self) -> int:
        return int(self.boundaries[-1]) if self.boundaries.size else 0

    @property
    def num_edges(self) -> int:
        return sum(shard.num_edges for shard in self.shards)

    @property
    def nbytes(self) -> int:
        # The lazy global degrees view only counts once materialized —
        # introspection must not force an O(entities) concat.
        return (sum(shard.nbytes for shard in self.shards)
                + (self._degrees.nbytes
                   if self._degrees is not None else 0))

    def epochs(self) -> Tuple[int, ...]:
        return tuple(shard.epoch for shard in self.shards)

    def digest(self) -> str:
        """Content hash of the whole store: a digest over the per-shard
        digests (cached — after a 2-shard delta only 2 shards re-hash;
        the other S-2 reuse their cached value)."""
        if self._digest is None:
            h = hashlib.sha256()
            h.update(np.ascontiguousarray(self.boundaries).tobytes())
            for shard in self.shards:
                h.update(shard.digest().encode("ascii"))
            self._digest = h.hexdigest()[:16]
        return self._digest

    # ------------------------------------------------------------------
    # Queries (the walk hot path)
    # ------------------------------------------------------------------
    def shard_of(self, entities: np.ndarray) -> np.ndarray:
        """Shard index of each entity id (vectorized)."""
        return np.searchsorted(self.boundaries, entities,
                               side="right") - 1

    def slice(self, entity: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(rels, tails)`` views of one entity's capped edge block."""
        sid = int(np.searchsorted(self.boundaries, entity,
                                  side="right")) - 1
        tables = self.shards[sid].tables
        local = int(entity) - int(self.boundaries[sid])
        start, stop = tables.indptr[local], tables.indptr[local + 1]
        return tables.rels[start:stop], tables.tails[start:stop]

    def gather_into(self, entities: np.ndarray, cols: np.ndarray,
                    mask: np.ndarray, idx: np.ndarray,
                    rels_out: np.ndarray, tails_out: np.ndarray,
                    scratch=None, metrics=None) -> None:
        """Fill ``(N, A)`` rel/tail grids for a frontier, zero-padded.

        ``mask`` must already hold ``cols < degrees[entities]``; padded
        cells are redirected to each shard's slot-0 sentinel by the
        ``idx *= mask`` trick, so the gathers stay in bounds and pads
        read as 0.  Single-shard frontiers (always when ``S == 1``, and
        whenever the frontier's id range happens to fit one shard) take
        one global gather — the monolithic fast path; otherwise the
        frontier is sorted **shard-major** and served as one contiguous
        sub-gather per touched shard run with a single scatter back to
        row order per output grid.

        ``scratch`` (a :class:`~repro.core.environment.RolloutWorkspace`
        or None) recycles the multi-shard path's two scatter grids so
        steady-state gathers allocate nothing; ``metrics`` (a
        ``repro.telemetry`` MetricBlock or None) picks up gather call /
        row counters, per-shard row counters on the multi-shard path,
        and the scratch-allocation count that proves the recycling.
        """
        n = len(entities)
        if n == 0:
            return
        boundaries = self.boundaries
        sid = 0
        if self.num_shards > 1:
            lo, hi = entities.min(), entities.max()
            sid = int(np.searchsorted(boundaries, lo, side="right")) - 1
            if hi >= boundaries[sid + 1]:
                self._gather_multi(entities, cols, mask, idx,
                                   rels_out, tails_out, scratch,
                                   metrics)
                return
        tables = self.shards[sid].tables
        local = entities - boundaries[sid] if sid else entities
        np.add(np.take(tables.indptr, local)[:, None], cols[None, :],
               out=idx)
        np.multiply(idx, mask, out=idx)
        np.take(tables.rels, idx, out=rels_out)
        np.take(tables.tails, idx, out=tails_out)
        if metrics is not None:
            metrics.count("gather_calls_total")
            metrics.count("gather_rows_total", n)
            metrics.count(gather_shard_counter(sid), n)

    def _gather_multi(self, entities: np.ndarray, cols: np.ndarray,
                      mask: np.ndarray, idx: np.ndarray,
                      rels_out: np.ndarray, tails_out: np.ndarray,
                      scratch=None, metrics=None) -> None:
        """Cross-shard frontier: shard-major grouped gather.

        One stable argsort groups rows into contiguous runs per shard;
        each run's sub-gather then reads *and writes* contiguous slices
        (the row permutation is applied to the small inputs up front,
        and undone with exactly **one** fancy scatter per output grid at
        the end) instead of paying a fancy row-scatter per touched shard
        per output, which is what made scattered frontiers degrade
        toward S separate gathers.

        The two frontier-sized scatter grids come from ``scratch``
        when available — the last per-hop allocation on the walk path
        recycles through the workspace like every other grid.
        """
        sid = self.shard_of(entities)
        order = np.argsort(sid, kind="stable")
        sorted_sid = sid[order]
        ents_s = entities[order]
        mask_s = mask[order]
        n, width = rels_out.shape
        if scratch is not None:
            before = scratch.allocations
            rels_s = scratch.buffer("gather_rels_s", n, width,
                                    rels_out.dtype)
            tails_s = scratch.buffer("gather_tails_s", n, width,
                                    tails_out.dtype)
            if metrics is not None and scratch.allocations != before:
                metrics.count("gather_scratch_allocs_total",
                              scratch.allocations - before)
        else:
            rels_s = np.empty_like(rels_out)
            tails_s = np.empty_like(tails_out)
        starts = np.flatnonzero(
            np.concatenate([[True], sorted_sid[1:] != sorted_sid[:-1]]))
        stops = np.concatenate([starts[1:], [sorted_sid.size]])
        for start, stop in zip(starts, stops):
            shard_id = int(sorted_sid[start])
            shard = self.shards[shard_id]
            tables = shard.tables
            local = ents_s[start:stop] - shard.start
            block = idx[start:stop]
            np.add(np.take(tables.indptr, local)[:, None], cols[None, :],
                   out=block)
            np.multiply(block, mask_s[start:stop], out=block)
            np.take(tables.rels, block, out=rels_s[start:stop])
            np.take(tables.tails, block, out=tails_s[start:stop])
            if metrics is not None:
                metrics.count(gather_shard_counter(shard_id),
                              stop - start)
        rels_out[order] = rels_s
        tails_out[order] = tails_s
        if metrics is not None:
            metrics.count("gather_calls_total")
            metrics.count("gather_multi_total")
            metrics.count("gather_rows_total", n)

    # ------------------------------------------------------------------
    # Flat compatibility view
    # ------------------------------------------------------------------
    def to_flat(self) -> ShardTables:
        """Materialize the monolithic flat bundle (O(E) — oracle/export
        use only; the hot path never calls this)."""
        rels = np.concatenate(
            [np.zeros(1, dtype=np.int32)]
            + [shard.tables.rels[1:] for shard in self.shards])
        tails = np.concatenate(
            [np.zeros(1, dtype=np.int32)]
            + [shard.tables.tails[1:] for shard in self.shards])
        indptr = np.concatenate(
            [[1], 1 + np.cumsum(self.degrees)]).astype(np.int32)
        return ShardTables(indptr, rels, tails, self.degrees)

    def __repr__(self) -> str:
        return (f"ShardedCSR(shards={self.num_shards}, "
                f"entities={self.num_entities}, edges={self.num_edges}, "
                f"epochs={self.epochs()})")
