"""Sharded incremental CSR graph store.

The capped KG adjacency the walk policy reads on every hot-path step,
stored as ``S`` contiguous entity-range shards so online deltas cost
what they touch:

* :class:`~repro.graphstore.store.CSRShard` — one immutable per-shard
  ``(indptr, rels, tails, degrees)`` bundle with a monotonic epoch and
  a cached content digest;
* :class:`~repro.graphstore.store.ShardedCSR` — the query facade
  (global degrees, zero-sentinel cross-shard gather, per-entity
  slices, flat compatibility view);
* :mod:`~repro.graphstore.merge` — the shared base-first capped merge
  kernel, per-shard (:func:`~repro.graphstore.merge.compact_store`)
  and monolithic (:func:`~repro.graphstore.merge.full_merge`, kept as
  oracle + bench baseline).

Consumers: ``repro.core.environment`` (owns a store per environment),
``repro.runtime`` (exports each shard as its own shared-memory plane
generation and ships per-shard deltas to process workers).  See
``README.md`` in this directory for the shard lifecycle, the
epoch/fingerprint scheme, and the delta-publish protocol.
"""

from repro.graphstore.merge import (
    compact_store,
    full_merge,
    merge_capped,
    merge_shard,
)
from repro.graphstore.store import (
    CSRShard,
    ShardTables,
    ShardedCSR,
    auto_shard_count,
    pack_tables,
    shard_boundaries,
)

__all__ = [
    "CSRShard",
    "ShardTables",
    "ShardedCSR",
    "auto_shard_count",
    "compact_store",
    "full_merge",
    "merge_capped",
    "merge_shard",
    "pack_tables",
    "shard_boundaries",
]
