"""First-stage candidate generators for cascade serving.

A :class:`CandidateProvider` maps one session prefix to the top-``M``
plausible next items using a model that is far cheaper than the REKS
beam walk — the classic production two-stage shape: a broad, cheap
pre-rank whose output *candidate set* the expensive explainable
re-rank (the candidate-constrained walk) is then restricted to.

Two providers ship:

* :class:`NeighborsProvider` — session-kNN in the style of the
  ``repro.models.neighbors`` baselines: item-item cosine co-occurrence
  similarity to the session's last item, backfilled by global training
  popularity so the candidate list always has ``M`` entries even for
  cold tail items;
* :class:`EncoderProvider` — any fitted
  :class:`~repro.models.base.SessionEncoder` (GRU4Rec, NARM, …): one
  forward pass over the prefix, top-``M`` of the catalog logits.  When
  built from a REKS trainer this reuses the *same* encoder the agent
  walks with, so the cascade adds no extra model to train or ship.

Both are deterministic (ties broken by item id) — candidate identity
is part of the explanation-cache key, so a provider must return the
same set for the same prefix every time.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Protocol, Sequence, Tuple

import numpy as np


class CandidateProvider(Protocol):
    """The first-stage contract: prefix -> candidate item ids.

    ``provider_id`` must identify the provider *and its fitted state*
    well enough for cache keying (two servers with the same id and the
    same ``M`` must produce the same candidate sets).
    """

    provider_id: str

    def top_m(self, prefix_items: Sequence[int], m: int,
              user_id: Optional[int] = None) -> np.ndarray:
        """The ``m`` best next-item candidates, best first, int64."""
        ...


def _ranked_top_m(scores: np.ndarray, m: int) -> np.ndarray:
    """Deterministic top-``m`` of a 1-D score row (item 0 excluded).

    Ties break toward the smaller item id: the sort key is
    ``(-score, item_id)`` via a stable argsort over an argpartition,
    mirroring the tie-safe ``_top_k`` of the agent.
    """
    scores = scores.copy()
    scores[0] = -np.inf
    m = min(int(m), scores.shape[0] - 1)
    part = np.argpartition(-scores, kth=m - 1)[:m]
    # (-score, id) order within the partition: lexsort's last key is
    # primary, so ties inside the kept set come out id-ascending.
    ranked = part[np.lexsort((part, -scores[part]))]
    # argpartition's choice among equal scores *at the boundary* is
    # implementation-defined, so the membership of the boundary tie
    # group must be resolved explicitly: order the full group by id
    # and take what fits.  (Cheap — tie groups are tiny in practice.)
    boundary = scores[ranked[-1]]
    tied = np.flatnonzero(scores == boundary)
    if tied.size > 1:
        keep = ranked[scores[ranked] > boundary]
        fill = tied[:m - keep.size]
        ranked = np.concatenate([keep, fill])
    return ranked.astype(np.int64)


class NeighborsProvider:
    """Session-kNN candidates: ItemKNN cosine co-occurrence summed
    over the whole prefix with recency decay (most recent item weighted
    1, one step earlier ``decay``, ...), popularity-backfilled to
    always yield ``M`` items."""

    def __init__(self, n_items: int, sessions: Sequence,
                 regularization: float = 20.0,
                 decay: float = 0.6) -> None:
        from collections import Counter, defaultdict

        self.n_items = int(n_items)
        support: Counter = Counter()
        cooc: Dict[int, Counter] = defaultdict(Counter)
        pop = np.zeros(self.n_items + 1, dtype=np.float64)
        for session in sessions:
            items = list(session.items)
            for item in items:
                pop[item] += 1.0
            distinct = sorted(set(items))
            support.update(distinct)
            for i, a in enumerate(distinct):
                for b in distinct[i + 1:]:
                    cooc[a][b] += 1
                    cooc[b][a] += 1
        # CSR-shaped similarity rows (neighbor ids + values per item)
        # so top_m is a handful of vectorized scatter-adds, not a
        # python dict walk — the first stage must stay far cheaper
        # than the walk it feeds.
        self._sim_ids: Dict[int, np.ndarray] = {}
        self._sim_vals: Dict[int, np.ndarray] = {}
        for a, row in cooc.items():
            ids = np.fromiter(row.keys(), dtype=np.int64, count=len(row))
            counts = np.fromiter(row.values(), dtype=np.float64,
                                 count=len(row))
            sup = np.array([support[b] for b in row], dtype=np.float64)
            self._sim_ids[a] = ids
            self._sim_vals[a] = counts / (
                np.sqrt(support[a] * sup) + regularization)
        # Popularity backfill, scaled below every positive similarity
        # so co-occurrence evidence always outranks raw popularity.
        pmax = pop.max()
        self._pop_floor = pop / (pmax * 1e6) if pmax > 0 else pop
        self._decay = float(decay)
        self.provider_id = f"neighbors:r{regularization:g}:d{decay:g}"

    def top_m(self, prefix_items: Sequence[int], m: int,
              user_id: Optional[int] = None) -> np.ndarray:
        scores = self._pop_floor.copy()
        weight = 1.0
        for item in reversed(list(prefix_items)):
            ids = self._sim_ids.get(int(item))
            if ids is not None:
                scores[ids] += weight * self._sim_vals[int(item)]
            weight *= self._decay
        return _ranked_top_m(scores, m)


class EncoderProvider:
    """Top-``M`` of a fitted session encoder's catalog logits."""

    def __init__(self, encoder, max_session_length: int,
                 provider_id: str = "encoder") -> None:
        self._encoder = encoder
        self._max_len = int(max_session_length)
        self._lock = threading.Lock()
        self.provider_id = provider_id

    def top_m(self, prefix_items: Sequence[int], m: int,
              user_id: Optional[int] = None) -> np.ndarray:
        from repro.autograd import no_grad
        from repro.data.loader import collate_examples

        batch = collate_examples(
            [(list(prefix_items), 0, user_id or 0)], self._max_len)
        # Deterministic inference: eval mode (no dropout draws) and one
        # forward pass at a time — the provider may be called from
        # several dispatcher threads.
        with self._lock, no_grad():
            if self._encoder.training:
                self._encoder.eval()
            logits = self._encoder.score_items(
                self._encoder.encode(batch)).data[0]
        return _ranked_top_m(logits.astype(np.float64), m)


class CandidateCache:
    """Thread-safe LRU of candidate lists keyed by (prefix, user).

    The first stage is cheap but not free — interactive traffic
    re-requests the same session suffix while the user browses, so the
    planner memoizes provider output exactly like the explanation
    cache memoizes full answers.  ``capacity=0`` disables caching.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> Optional[np.ndarray]:
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: tuple, value: np.ndarray) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def provider_from_trainer(trainer, name: str) -> CandidateProvider:
    """Build a named provider from a fitted REKS trainer.

    ``"neighbors"`` fits session-kNN on the trainer's train split;
    ``"encoder"`` reuses the agent's own (already-fitted) encoder.
    """
    key = (name or "").lower()
    if key == "neighbors":
        return NeighborsProvider(trainer.dataset.n_items,
                                 trainer.dataset.split.train)
    if key == "encoder":
        return EncoderProvider(
            trainer.agent.encoder,
            trainer.config.max_session_length,
            provider_id=f"encoder:{trainer.model_name}"
            if hasattr(trainer, "model_name") else "encoder")
    raise KeyError(f"unknown cascade provider {name!r}; "
                   f"choose 'neighbors' or 'encoder'")
