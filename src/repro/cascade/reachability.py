"""Reverse-reachability bitmaps: which entities can still reach a
candidate item in exactly ``r`` more hops.

The candidate-constrained walk prunes a frontier action as soon as its
tail entity provably cannot complete a path to any candidate item in
the hops that remain — the action's eventual contribution to every
candidate's score is zero, so (for saturating beam sizes) dropping it
never changes a candidate's score, only the work spent computing it.

The proof obligation is per (entity, remaining-hops) pair, so the
index precomputes, per hop level ``r`` and per item ``i``, the bitmap
of entities with a forward path of **exactly** ``r`` hops ending at
``i``'s entity:

* level 0 is the identity — item ``i``'s own entity;
* level ``r`` is one reverse-BFS expansion of level ``r-1`` over the
  compacted CSR adjacency (entity ``e`` is set iff some forward edge
  ``e -> t`` has ``t`` set at level ``r-1``).

Bitmaps are bit-packed (``np.packbits``) per item row, so a request's
per-row mask is one ``bitwise_or`` reduction over its ``M`` candidate
rows plus one unpack — no graph traversal on the request path.

Scope: the index is built from the **compacted** shards
(:meth:`~repro.graphstore.ShardedCSR`); staged overlay edges are not
folded in, so a path that exists only through the overlay can be
pruned until the next compaction.  That makes cascade-on results
conservative (never wrong for compacted graphs, temporarily narrower
for freshly staged edges) and — crucially — identical between thread
mode and process workers, which rebuild the same index from the same
shard digests.  Cascade-off serving is entirely unaffected.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Sequence, Tuple

import numpy as np

# Item-row chunking for the level expansion: bounds the unpacked
# (chunk, num_edges) scratch to ~64 rows regardless of catalog size.
_BUILD_CHUNK = 64


class ReachabilityIndex:
    """Per-hop packed bitmaps ``levels[r][i]`` = entities that reach
    item ``i``'s entity in exactly ``r`` forward hops."""

    def __init__(self, levels: List[np.ndarray], num_entities: int,
                 digest: str) -> None:
        self.levels = levels          # each (n_items + 1, packed_width)
        self.num_entities = int(num_entities)
        self.digest = digest          # store digest the index was built from

    @property
    def hops(self) -> int:
        """Highest exact-hop level available (``len(levels) - 1``)."""
        return len(self.levels) - 1

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, store, built, hops: int) -> "ReachabilityIndex":
        """Build levels ``0..hops`` from a :class:`ShardedCSR` store.

        O(hops * n_items * E / 8) bit-ops via chunked boolean
        reductions over the flat CSR — an offline cost paid once per
        store generation (the digest keys the cache in
        :func:`get_index`).
        """
        if hops < 0:
            raise ValueError(f"hops must be >= 0, got {hops}")
        flat = store.to_flat()
        n_entities = int(store.num_entities)
        n_items = built.n_items
        # Flat layout is offset-by-one with a slot-0 sentinel: entity
        # e's edges live at tails[indptr[e] : indptr[e + 1]] with
        # indptr[0] == 1, so shifting the pointers down by one indexes
        # the sentinel-free edge array directly.
        tails_flat = flat.tails[1:].astype(np.int64)
        starts = (flat.indptr[:-1].astype(np.int64) - 1)
        degrees = flat.degrees.astype(np.int64)
        has_edges = degrees > 0

        level0 = np.zeros((n_items + 1, n_entities), dtype=bool)
        item_entities = built.item_entity[1:]
        level0[np.arange(1, n_items + 1), item_entities] = True
        levels = [np.packbits(level0, axis=1)]
        prev = level0
        for _ in range(hops):
            nxt = np.zeros((n_items + 1, n_entities), dtype=np.uint8)
            for lo in range(0, n_items + 1, _BUILD_CHUNK):
                hi = min(lo + _BUILD_CHUNK, n_items + 1)
                # (chunk, E): is each edge's tail reachable-at-prev?
                vals = prev[lo:hi, tails_flat].astype(np.uint8)
                if has_edges.any():
                    seg_starts = starts[has_edges]
                    # reduceat segments between consecutive non-empty
                    # entities span exactly one entity's edge slice
                    # (zero-degree entities in between contribute no
                    # edges, so the next pointer coincides).
                    nxt[lo:hi, has_edges] = np.maximum.reduceat(
                        vals, seg_starts, axis=1)
            prev = nxt.astype(bool)
            levels.append(np.packbits(prev, axis=1))
        return cls(levels, n_entities, digest=store.digest())

    # ------------------------------------------------------------------
    def entity_mask(self, candidate_rows: Sequence[np.ndarray],
                    remaining: int) -> np.ndarray:
        """(B, num_entities) bool: row ``b``'s allowed tails when
        ``remaining`` hops are left — entities reaching *some*
        candidate of row ``b`` in exactly ``remaining`` hops."""
        level = self.levels[remaining]
        width = level.shape[1]
        packed = np.zeros((len(candidate_rows), width), dtype=np.uint8)
        for b, cands in enumerate(candidate_rows):
            if len(cands):
                packed[b] = np.bitwise_or.reduce(
                    level[np.asarray(cands, dtype=np.int64)], axis=0)
        return np.unpackbits(packed, axis=1,
                             count=self.num_entities).astype(bool)

    def nbytes(self) -> int:
        return sum(level.nbytes for level in self.levels)


# ----------------------------------------------------------------------
# Per-process index cache: one entry per (store digest, hops).  Thread
# mode and every worker process each build their own from their own
# attached store — same digests, same bitmaps.
# ----------------------------------------------------------------------
_CACHE: Dict[Tuple[str, int], ReachabilityIndex] = {}
_CACHE_LOCK = threading.Lock()
_CACHE_KEEP = 2  # current generation + the one a compaction just retired


def get_index(env, hops: int, metrics=None) -> ReachabilityIndex:
    """The (cached) reachability index for ``env``'s current store.

    ``metrics`` (a telemetry view) counts ``reachability_rebuilds_total``
    once per *actual* build — cache hits are free and uncounted, so the
    counter measures real post-compaction rebuild work, not lookups.
    """
    store = env.csr_tables()
    key = (store.digest(), int(hops))
    with _CACHE_LOCK:
        hit = _CACHE.get(key)
        if hit is not None:
            return hit
    index = ReachabilityIndex.build(store, env.built, hops)
    if metrics is not None:
        metrics.count("reachability_rebuilds_total")
    with _CACHE_LOCK:
        _CACHE[key] = index
        while len(_CACHE) > _CACHE_KEEP:
            _CACHE.pop(next(iter(_CACHE)))
    return index


class ReachabilityPrewarmer:
    """Rebuild the reachability index off the request path.

    Lazily building on the first post-compaction request puts the whole
    O(hops * n_items * E / 8) build inside one unlucky request's
    latency.  The prewarmer watches the store digest and rebuilds in a
    background thread the moment it changes, so by the time traffic
    arrives :func:`get_index` is a cache hit.

    :meth:`poll_once` is the deterministic unit (used directly by tests
    and by the serving health loop); :meth:`start`/:meth:`stop` wrap it
    in a daemon thread for standalone use.  Duplicate concurrent builds
    are benign — both insert under the same digest key.
    """

    def __init__(self, env, hops: int, metrics=None,
                 interval_s: float = 0.25) -> None:
        self._env = env
        self._hops = int(hops)
        self._metrics = metrics
        self._interval = float(interval_s)
        self._last_key: Tuple[str, int] = ("", -1)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def poll_once(self) -> bool:
        """Check the digest; build if it moved.  True if a build ran."""
        store = self._env.csr_tables()
        key = (store.digest(), self._hops)
        if key == self._last_key:
            return False
        with _CACHE_LOCK:
            cached = key in _CACHE
        if not cached:
            get_index(self._env, self._hops, metrics=self._metrics)
        self._last_key = key
        return not cached

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="reach-prewarm")
        self._thread.start()

    def _run(self) -> None:
        try:
            self.poll_once()  # warm the current generation immediately
        except Exception:  # pragma: no cover - best-effort warmer
            pass
        while not self._stop.wait(self._interval):
            try:
                self.poll_once()
            except Exception:  # pragma: no cover - best-effort warmer
                pass

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
