"""Cascade serving: cheap first-stage candidate pre-rank feeding a
candidate-constrained REKS beam walk (ROADMAP direction 3)."""

from repro.cascade.planner import (CascadePlanner, WalkConstraint,
                                   build_constraint)
from repro.cascade.providers import (CandidateCache, CandidateProvider,
                                     EncoderProvider, NeighborsProvider,
                                     provider_from_trainer)
from repro.cascade.reachability import ReachabilityIndex, get_index

__all__ = [
    "CandidateCache",
    "CandidateProvider",
    "CascadePlanner",
    "EncoderProvider",
    "NeighborsProvider",
    "ReachabilityIndex",
    "WalkConstraint",
    "build_constraint",
    "get_index",
    "provider_from_trainer",
]
