"""Second-stage orchestration: candidate plans and walk constraints.

The planner sits parent-side in the serving dispatcher: for each row
of a flushed micro-batch it asks the (memoized) first-stage provider
for top-``M`` candidates; the resulting per-row candidate lists travel
with the batch to wherever the walk runs (thread mode, pipe fallback,
or the ring codec's candidate section) and are turned into a
:class:`WalkConstraint` next to the agent, where the reachability
index lives.

Candidate sets are strictly **per row** — never unioned across a
batch — so a session's ranking can never depend on which other
sessions happened to coalesce into the same flush (the same
batch-composition invariance the unconstrained walk already has).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cascade.providers import CandidateCache, CandidateProvider
from repro.cascade.reachability import ReachabilityIndex, get_index


class WalkConstraint:
    """Resolved per-batch masks the constrained walk consumes.

    ``entity_levels[r]`` is the (B, num_entities) bool mask of tails
    allowed when ``r`` hops remain *after* the current expansion;
    ``item_allowed`` is the (B, n_items + 1) bool candidate-set mask
    final scoring restricts to.
    """

    def __init__(self, entity_levels: List[np.ndarray],
                 item_allowed: np.ndarray) -> None:
        self.entity_levels = entity_levels
        self.item_allowed = item_allowed

    def hop_mask(self, hop: int, total_hops: int) -> Optional[np.ndarray]:
        """Allowed-tail mask for expansion ``hop`` of ``total_hops``.

        After selecting tails at hop ``h`` there are
        ``total_hops - 1 - h`` expansions left, so a tail is useful iff
        it reaches a candidate in exactly that many hops.  Returns
        ``None`` (no pruning) if the constraint was built for fewer
        hops than the walk runs — correctness over pruning.
        """
        remaining = total_hops - 1 - hop
        if remaining < 0 or remaining >= len(self.entity_levels):
            return None
        return self.entity_levels[remaining]


def build_constraint(agent, candidate_rows: Sequence[Sequence[int]],
                     num_hops: int,
                     index: Optional[ReachabilityIndex] = None,
                     ) -> WalkConstraint:
    """Resolve per-row candidate id lists into walk masks.

    Runs next to the agent (dispatcher thread in thread mode, worker
    process otherwise) so the reachability index is built from — and
    cached against — that process's own attached store.
    """
    if index is None or index.hops < num_hops:
        index = get_index(agent.env, num_hops)
    rows = [np.asarray(c, dtype=np.int64) for c in candidate_rows]
    levels = [index.entity_mask(rows, r) for r in range(num_hops)]
    n_items = agent.n_items
    item_allowed = np.zeros((len(rows), n_items + 1), dtype=bool)
    for b, cands in enumerate(rows):
        item_allowed[b, cands] = True
    item_allowed[:, 0] = False
    return WalkConstraint(levels, item_allowed)


class CascadePlanner:
    """First-stage front door: provider + LRU memoization + identity.

    ``identity`` — ``(provider_id, m)`` — is folded into explanation
    cache keys so answers computed under one cascade configuration are
    never replayed under another.
    """

    def __init__(self, provider: CandidateProvider, m: int,
                 cache_size: int = 1024) -> None:
        if m < 1:
            raise ValueError(f"cascade m must be >= 1, got {m}")
        self.provider = provider
        self.m = int(m)
        self.cache = CandidateCache(cache_size)

    @property
    def identity(self) -> Tuple[str, int]:
        return (self.provider.provider_id, self.m)

    def plan(self, prefix_items: Sequence[int],
             user_id: Optional[int] = None) -> np.ndarray:
        """Top-``M`` candidate item ids for one session prefix."""
        key = (tuple(int(i) for i in prefix_items), user_id)
        hit = self.cache.get(key)
        if hit is not None:
            return hit
        cands = np.asarray(
            self.provider.top_m(prefix_items, self.m, user_id=user_id),
            dtype=np.int64)
        self.cache.put(key, cands)
        return cands
