"""The request-coalescing recommendation + explanation server.

A :class:`RecommendationServer` wraps one fitted
:class:`~repro.core.agent.REKSAgent` and turns its batch-oriented
``recommend`` into an interactive-traffic API:

* :meth:`submit` / :meth:`recommend_one` — single-session requests,
  coalesced across callers into micro-batches by a
  :class:`~repro.serving.scheduler.BatchScheduler`;
* :meth:`recommend_many` — bulk traffic (splits oversize lists across
  micro-batches and reuses cached entries);
* a :class:`~repro.serving.pool.WorkspacePool` pins one
  :class:`~repro.core.environment.RolloutWorkspace` per in-flight
  batch so concurrent workers never share scratch buffers;
* an :class:`~repro.serving.cache.ExplanationCache` LRU short-circuits
  repeat (session-suffix, k) requests;
* a :class:`~repro.serving.stats.ServerStats` recorder tracks latency
  percentiles, batch occupancy, and cache efficiency.

Determinism contract: a coalesced micro-batch is collated with the
same routine as :meth:`REKSTrainer.recommend_sessions`
(:func:`repro.data.loader.collate_examples`, prefix = ``items[:-1]``),
and per-row rankings are batch-composition invariant, so the served
``items`` match a synchronous ``recommend_sessions`` call for the same
sessions and ``k`` regardless of how requests were interleaved.

Worker modes (``worker_mode``): ``"thread"`` executes micro-batches on
this interpreter's worker threads (coalescing wins only — the GIL
serializes the compute); ``"process"`` hands each micro-batch to a
:class:`~repro.runtime.ProcessWorkerPool` worker that attaches the
shared-memory table plane (CSR adjacency + frozen embedding tables,
zero-copy) and executes with true parallelism.  The determinism and
hot-swap contracts hold identically in both modes — process-mode
rankings, scores, and rendered explanations are bit-identical to
thread mode (``tests/test_runtime.py`` pins this).

Hot-swap contract (:meth:`RecommendationServer.swap_model`): a new
checkpoint is loaded into a *clone* of the live agent off the request
path, then the live ``(agent, version)`` pair is replaced under a lock
that workers take once per micro-batch — an in-flight batch finishes
entirely on the weights it started with, queued requests execute on
the new ones, and no request is dropped.  Cache entries are keyed by
model version, so the swap does not flush the cache: stale entries
stop being queried and age out of the LRU while same-version warm
traffic keeps hitting.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass, replace
from time import perf_counter
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.agent import REKSAgent, _top_k, clone_agent
from repro.data.loader import collate_examples
from repro.data.schema import Session
from repro.kg.paths import SemanticPath, render_path
from repro.runtime import ProcessWorkerPool
from repro.serving.cache import ExplanationCache
from repro.serving.memo import WalkMemo, dedup_plan
from repro.serving.pool import WorkspacePool
from repro.serving.scheduler import (
    BatchScheduler,
    PendingRequest,
    SchedulerClosed,
)
from repro.serving.stats import ServerStats, StatsSnapshot
from repro.telemetry.block import fleet_schema
from repro.telemetry.httpd import MetricsEndpoint
from repro.telemetry.registry import FleetSnapshot, MetricsRegistry
from repro.telemetry.sink import TraceSink
from repro.telemetry.trace import Tracer, attribute_rows
from repro.telemetry.window import (RollingWindow, WindowSampler,
                                    WindowSnapshot)


@dataclass(frozen=True)
class ServedResult:
    """Per-request response: ranked items, scores, rendered paths.

    ``explanations[i]`` is the arrow-form rendering of ``paths[i]``
    (empty string when the item carries no path, e.g. it was reached
    only through the encoder fallback or not at all).
    """

    items: Tuple[int, ...]
    scores: Tuple[float, ...]
    paths: Tuple[Optional[SemanticPath], ...]
    explanations: Tuple[str, ...]
    cached: bool = False
    latency_ms: float = 0.0


@dataclass(frozen=True)
class _Request:
    """Scheduler payload for one session.

    ``base_key`` is the version-less cache identity — the executing
    worker appends the model version it actually ran with, which may be
    newer than the one the submitter looked up (a swap landed between
    submit and execution; the result is then cached under the version
    that computed it).
    """

    session: Session
    k: int
    base_key: tuple
    trace: int = 0  # sampled trace id (0 = this request is not traced)


class ServerClosed(RuntimeError):
    """Raised when submitting to a shut-down server."""


class RecommendationServer:
    """Coalesce concurrent single-session requests into shared walks."""

    def __init__(self, agent: REKSAgent, *, max_batch: int = 32,
                 max_wait_ms: float = 2.0, workers: int = 2,
                 cache_size: int = 2048, default_k: int = 20,
                 registry=None, model_version: int = 0,
                 worker_mode: str = "thread", mp_context: str = "auto",
                 plane_backend: str = "auto",
                 transport: str = "ring",
                 health_interval_ms: float = 200.0,
                 trace_sample: float = 0.0,
                 trace_rows: bool = True,
                 trace_path: Optional[str] = None,
                 window_interval_ms: float = 0.0,
                 metrics: bool = True,
                 metrics_port: Optional[int] = None,
                 metrics_registry: Optional[MetricsRegistry] = None,
                 cascade=None, cascade_m: int = 50,
                 cascade_cache_size: int = 1024,
                 dedup: bool = True,
                 walk_memo_size: int = 512) -> None:
        if worker_mode not in ("thread", "process"):
            raise ValueError(
                f"worker_mode must be 'thread' or 'process', "
                f"got {worker_mode!r}")
        if transport not in ("pipe", "ring"):
            raise ValueError(
                f"transport must be 'pipe' or 'ring', got {transport!r}")
        # Cascade serving: ``cascade`` is a CandidateProvider (wrapped
        # in a planner with an LRU candidate cache) or an already-built
        # CascadePlanner; None serves the full unconstrained walk,
        # bit-identical to a server without the feature.
        self._cascade = None
        if cascade is not None:
            from repro.cascade import CascadePlanner

            self._cascade = (cascade if isinstance(cascade, CascadePlanner)
                             else CascadePlanner(cascade, cascade_m,
                                                 cascade_cache_size))
        self._cascade_id = (None if self._cascade is None
                            else self._cascade.identity)
        self._agent = agent
        self._model_version = int(model_version)
        self._agent_lock = threading.Lock()
        self._registry = registry
        self._kg = agent.env.built.kg
        self._max_session_length = agent.config.max_session_length
        self._start_from = agent.config.start_from
        self.default_k = default_k
        self.worker_mode = worker_mode
        self._scheduler = BatchScheduler(max_batch=max_batch,
                                         max_wait_ms=max_wait_ms)
        # Telemetry plane (repro.telemetry): one shared-memory metric
        # block per process in the serving fleet, all merged by a
        # parent-side registry.  The server owns the "server" role
        # block (request latency, cache, enqueue/flush/render timings
        # — and, in thread mode, the walk/gather instrumentation that
        # otherwise lands in the worker children's blocks).
        self._tracer = Tracer(sample=trace_sample)
        self._trace_rows = bool(trace_rows)
        self._sink: Optional[TraceSink] = None
        self._metrics_registry: Optional[MetricsRegistry] = None
        self._owns_registry = False
        self._metrics = None
        if metrics:
            self._metrics_registry = (metrics_registry
                                      if metrics_registry is not None
                                      else MetricsRegistry(
                                          backend=plane_backend))
            self._owns_registry = metrics_registry is None
            store = agent.env.csr_tables()
            schema = fleet_schema(num_shards=len(store.shards),
                                  hops=agent.config.path_length)
            self._metrics = self._metrics_registry.create_block(
                "server", schema)
            self._metrics.gauge("model_version", float(model_version))
            self._metrics.gauge("trace_sample", float(trace_sample))
            self._metrics.gauge("workers_alive", float(workers))
            self._tracer.attach_metrics(self._metrics)
        if trace_path and trace_sample > 0.0:
            # Streaming export: spans flow to a rotating JSONL file
            # through a bounded handoff queue (drops counted, never
            # silent) instead of dying in the drain-or-drop deque.
            self._sink = TraceSink(trace_path, metrics=self._metrics)
            self._tracer.attach_sink(self._sink)
        # In process mode the dispatcher threads below only marshal
        # batches to/from the worker processes, which own their
        # workspaces; the thread-side WorkspacePool stays for thread
        # mode.
        self._procpool: Optional[ProcessWorkerPool] = None
        if worker_mode == "process":
            self._procpool = ProcessWorkerPool(
                agent, workers=workers, mp_context=mp_context,
                plane_backend=plane_backend, model_version=model_version,
                transport=transport,
                health_interval_s=(health_interval_ms / 1e3
                                   if health_interval_ms else None),
                metrics_registry=self._metrics_registry,
                metrics_block=self._metrics,
                walk_memo_size=int(walk_memo_size))
            # The pool may downgrade ring -> pipe when the host has no
            # usable POSIX shared memory; report what actually runs.
            transport = self._procpool.transport
        self.transport = transport
        self._pool = WorkspacePool(workers, metrics=self._metrics)
        self._cache = ExplanationCache(cache_size)
        # Shared-computation layer (see repro.serving.memo): in-flush
        # row dedup plus the cross-flush walk memo.  In process mode
        # the memo lives inside each worker (full score rows don't fit
        # the fixed response slots), so the server-side instance stays
        # disabled there and the worker blocks carry the counters.
        self._dedup = bool(dedup)
        self._memo = WalkMemo(int(walk_memo_size)
                              if worker_mode == "thread" else 0)
        self._memo_metrics_lock = threading.Lock()
        self._memo_evictions_seen = 0
        self._stats = ServerStats(metrics=self._metrics)
        self._stats.attach_caches(cache=self._cache, memo=self._memo)
        # Reachability prewarm (thread mode with the cascade on): a
        # background watcher rebuilds the pruning index the moment the
        # store digest moves, so the first post-compaction request
        # doesn't pay the build.  Process workers prewarm themselves
        # after every tables broadcast.
        self._prewarmer = None
        if self._cascade is not None and worker_mode == "thread":
            from repro.cascade.reachability import ReachabilityPrewarmer

            self._prewarmer = ReachabilityPrewarmer(
                agent.env, agent.config.path_length,
                metrics=self._metrics)
            self._prewarmer.start()
        # Rolling-window plane: a bounded ring of fleet snapshots that
        # turns the cumulative counters into windowed rates/quantiles
        # (burn-rate SLOs, cli top).  The background sampler only runs
        # when an interval is configured; window() also records a
        # fresh sample on demand, so the ring is usable without it.
        self._window: Optional[RollingWindow] = None
        self._window_sampler: Optional[WindowSampler] = None
        if self._metrics_registry is not None:
            self._window = RollingWindow()
            self._window.record(self._metrics_registry.snapshot())
            if window_interval_ms and window_interval_ms > 0:
                self._window_sampler = WindowSampler(
                    self._metrics_registry.snapshot, self._window,
                    interval_s=window_interval_ms / 1e3)
        self._endpoint: Optional[MetricsEndpoint] = None
        if self._metrics_registry is not None and metrics_port is not None:
            self._endpoint = MetricsEndpoint(
                self.fleet_snapshot, port=int(metrics_port),
                window_fn=self.window,
                health_fn=self._metrics_registry.health,
                extra_fn=self.serving_state)
        self._shutdown_lock = threading.Lock()
        self._shut_down = False
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"reks-serve-{i}")
            for i in range(workers)]
        for thread in self._threads:
            thread.start()

    @classmethod
    def from_trainer(cls, trainer, **overrides) -> "RecommendationServer":
        """Build a server from a trainer's ``serve_*`` config knobs."""
        cfg = trainer.config
        kwargs = dict(max_batch=cfg.serve_max_batch,
                      max_wait_ms=cfg.serve_max_wait_ms,
                      workers=cfg.serve_workers,
                      cache_size=cfg.serve_cache_size,
                      default_k=cfg.serve_default_k,
                      worker_mode=cfg.serve_worker_mode,
                      mp_context=cfg.serve_mp_context,
                      plane_backend=cfg.runtime_plane_backend,
                      transport=cfg.serve_transport,
                      health_interval_ms=cfg.serve_health_interval_ms,
                      trace_sample=cfg.serve_trace_sample,
                      trace_rows=cfg.serve_trace_rows,
                      trace_path=(cfg.serve_trace_path or None),
                      window_interval_ms=cfg.serve_window_interval_ms,
                      metrics=cfg.serve_metrics,
                      metrics_port=(cfg.serve_metrics_port
                                    if cfg.serve_metrics_port >= 0
                                    else None),
                      dedup=cfg.serve_dedup,
                      walk_memo_size=cfg.serve_walk_memo_size)
        if cfg.serve_cascade_provider:
            from repro.cascade import provider_from_trainer

            kwargs.update(
                cascade=provider_from_trainer(trainer,
                                              cfg.serve_cascade_provider),
                cascade_m=cfg.serve_cascade_m,
                cascade_cache_size=cfg.serve_cascade_cache_size)
        kwargs.update(overrides)
        return cls(trainer.agent, **kwargs)

    # ------------------------------------------------------------------
    # Request API
    # ------------------------------------------------------------------
    def submit(self, session: Session, k: Optional[int] = None) -> Future:
        """Non-blocking submission; the future yields a ServedResult.

        Cache hits resolve the future immediately without touching the
        scheduler.
        """
        if self._shut_down:
            raise ServerClosed("server has been shut down")
        k = self.default_k if k is None else int(k)
        started = perf_counter()
        base = self._base_key(session, k)
        version = self._model_version
        hit = self._cache.get(ExplanationCache.key(
            *base, cascade=self._cascade_id, version=version))
        self._stats.record_cache(hit is not None, version)
        if hit is not None:
            if self._metrics is not None:
                # Rendering happened once, at cache admission; a hit
                # serves the stored strings without re-rendering.
                self._metrics.count("render_deferred_total",
                                    len(hit.explanations))
            latency = perf_counter() - started
            self._stats.record_request(latency)
            future: Future = Future()
            future.set_result(replace(hit, cached=True,
                                      latency_ms=latency * 1e3))
            return future
        trace = self._tracer.maybe_start()
        if trace and self._metrics is not None:
            self._metrics.count("traces_sampled_total")
        try:
            return self._scheduler.submit(_Request(session, k, base, trace))
        except SchedulerClosed as exc:
            # Lost the race against a concurrent shutdown(): surface
            # the server-level type the API documents.
            raise ServerClosed("server has been shut down") from exc

    def recommend_one(self, session: Session,
                      k: Optional[int] = None) -> ServedResult:
        """Blocking single-session request (the interactive path)."""
        return self.submit(session, k).result()

    def recommend_many(self, sessions: Sequence[Session],
                       k: Optional[int] = None) -> List[ServedResult]:
        """Bulk request: every session is enqueued up front (oversize
        lists split into ``max_batch`` micro-batches) and results come
        back in input order."""
        futures = [self.submit(session, k) for session in sessions]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # Model lifecycle (hot swap)
    # ------------------------------------------------------------------
    @property
    def model_version(self) -> int:
        """The version tag of the currently live model."""
        return self._model_version

    def swap_model(self, version: Optional[int] = None, *,
                   registry=None, state: Optional[dict] = None) -> float:
        """Atomically roll the live model to a published checkpoint.

        Loads checkpoint ``version`` (default: the registry's latest)
        into a clone of the live agent *off the request path*, then
        swaps the live ``(agent, version)`` pair under the worker lock.
        In-flight micro-batches complete on the weights they started
        with; queued requests execute on the new ones; nothing is
        dropped and the cache is not flushed (stale versions age out).

        ``state`` short-circuits the registry read with an in-memory
        state dict (then ``version`` is its required tag).  Returns the
        end-to-end swap latency in seconds.
        """
        if self._shut_down:
            raise ServerClosed("server has been shut down")
        started = perf_counter()
        if state is None:
            registry = registry if registry is not None else self._registry
            if registry is None:
                raise ValueError(
                    "swap_model needs a CheckpointRegistry (pass one at "
                    "construction or per call) or an explicit state dict")
            state, manifest = registry.load(version)
            version = manifest["version"]
        elif version is None:
            raise ValueError("swap_model(state=...) requires a version tag")
        if self._procpool is not None:
            # Process mode: broadcast the checkpoint to every worker.
            # Each worker applies it between micro-batches (its pipe is
            # locked per batch), so in-flight batches still finish on
            # the weights they started with.
            with self._agent_lock:
                self._procpool.swap(int(version), state)
                self._model_version = int(version)
        else:
            fresh = clone_agent(self._agent)
            fresh.load_state_dict(state)
            with self._agent_lock:
                self._agent = fresh
                self._model_version = int(version)
        latency = perf_counter() - started
        self._stats.record_swap(latency)
        if self._metrics is not None:
            self._metrics.gauge("model_version",
                                float(self._model_version))
        return latency

    def _live(self) -> Tuple[REKSAgent, int]:
        """The (agent, version) pair, read atomically (one per batch)."""
        with self._agent_lock:
            return self._agent, self._model_version

    # ------------------------------------------------------------------
    # Environment synchronization (online delta wiring)
    # ------------------------------------------------------------------
    def stage_edges(self, heads, rels, tails) -> int:
        """Stage overlay edges into the serving adjacency.

        Thread mode shares the template agent's environment with the
        ingesting trainer, so edges staged there are already visible —
        this only broadcasts them to the process workers' private
        environments when running in process mode.  Returns the number
        of edges newly staged (per worker in process mode).
        """
        if self._procpool is not None:
            return self._procpool.stage_edges(heads, rels, tails)
        return self._agent.env.stage_edges(heads, rels, tails)

    def refresh_tables(self) -> Optional[str]:
        """Ship the template environment's compacted shards to the
        process workers (no-op in thread mode, where workers read the
        compacted store directly).

        The publish is a **delta**: only shards whose content changed
        since the last export travel — fresh segments per dirty shard,
        a delta manifest broadcast, partial re-attach worker-side, old
        segments unlinked (see
        :meth:`~repro.runtime.ProcessWorkerPool.publish_tables`;
        ``process_pool.last_publish`` records what actually shipped).
        Returns the generation key, or None in thread mode."""
        if self._procpool is None:
            if self._prewarmer is not None:
                # Thread mode reads the compacted store directly, so a
                # refresh is the caller telling us the store moved —
                # rebuild the reachability index now, deterministically,
                # instead of waiting for the background watcher's tick.
                self._prewarmer.poll_once()
            return None
        return self._procpool.publish_tables(self._agent.env)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> StatsSnapshot:
        return self._stats.snapshot()

    def reset_stats(self) -> None:
        self._stats.reset()

    def fleet_snapshot(self) -> FleetSnapshot:
        """Merged metrics across every process in the serving fleet
        (server block + worker children + any co-registered roles)."""
        if self._metrics_registry is None:
            raise RuntimeError("server was built with metrics=False")
        return self._metrics_registry.snapshot()

    def window(self, seconds: Optional[float] = None
               ) -> Optional[WindowSnapshot]:
        """The rolling-window delta ending *now* (a fresh snapshot is
        recorded on demand, so this works without a background
        sampler).  ``seconds=None`` spans the whole retained ring.
        Returns None when metrics are disabled or fewer than two
        samples exist (a just-started server)."""
        if self._window is None or self._metrics_registry is None:
            return None
        try:
            self._window.record(self._metrics_registry.snapshot())
        except RuntimeError:  # registry closed mid-shutdown
            return None
        return self._window.window(seconds)

    def serving_state(self) -> dict:
        """JSON-safe shared-computation state for ``/metrics.json``:
        per-version entry counts for both caches (the post-swap
        stale-entry drain) plus the walk memo's own counters.  In
        process mode the memo section reflects the (empty) server-side
        instance — the workers' memo counters live in the fleet
        metrics."""
        memo = self._memo
        return {
            "dedup": self._dedup,
            "cache_entries_by_version": {
                str(v): n for v, n
                in sorted(self._cache.entries_by_version().items())},
            "walk_memo": {
                "capacity": memo.capacity,
                "entries": len(memo),
                "hits": memo.hits,
                "misses": memo.misses,
                "evictions": memo.evictions,
                "seconds_saved": memo.seconds_saved,
                "entries_by_version": {
                    str(v): n for v, n
                    in sorted(memo.entries_by_version().items())},
            },
        }

    def health(self) -> dict:
        """Fleet liveness report (see
        :meth:`~repro.telemetry.registry.MetricsRegistry.health`);
        trivially ok when metrics are disabled."""
        if self._metrics_registry is None:
            return {"ok": True, "roles": {}}
        return self._metrics_registry.health()

    @property
    def metrics_registry(self) -> Optional[MetricsRegistry]:
        """The fleet registry (None when metrics are disabled)."""
        return self._metrics_registry

    @property
    def tracer(self) -> Tracer:
        """The request tracer (disabled unless ``trace_sample > 0``)."""
        return self._tracer

    @property
    def trace_sink(self) -> Optional[TraceSink]:
        """The streaming JSONL sink (None unless ``trace_path`` was
        given with sampling enabled)."""
        return self._sink

    @property
    def metrics_url(self) -> Optional[str]:
        """URL of the /metrics HTTP endpoint (None unless enabled)."""
        return self._endpoint.url if self._endpoint is not None else None

    @property
    def cache(self) -> ExplanationCache:
        return self._cache

    @property
    def walk_memo(self) -> WalkMemo:
        """The cross-flush walk memo (disabled — capacity 0 — in
        process mode, where each worker owns its own)."""
        return self._memo

    @property
    def pool(self) -> WorkspacePool:
        return self._pool

    @property
    def process_pool(self) -> Optional[ProcessWorkerPool]:
        """The process worker pool (None in thread mode)."""
        return self._procpool

    @property
    def pending(self) -> int:
        return self._scheduler.pending

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self, drain: bool = True) -> None:
        """Stop the workers.

        With ``drain=True`` every already-submitted request still
        completes (its future resolves with a result) before the
        workers exit; with ``drain=False`` queued-but-unstarted
        requests fail with :class:`ServerClosed`.
        """
        with self._shutdown_lock:
            if self._shut_down:
                return
            self._shut_down = True
        abandoned = self._scheduler.close(drain=drain)
        for request in abandoned:
            request.future.set_exception(
                ServerClosed("server shut down before execution"))
        for thread in self._threads:
            thread.join()
        if self._prewarmer is not None:
            self._prewarmer.stop()
        if self._window_sampler is not None:
            self._window_sampler.close()
        if self._endpoint is not None:
            # joins the HTTP thread: no dangling daemon thread holding
            # the port after close() returns.
            self._endpoint.close()
        if self._procpool is not None:
            self._procpool.close()
        if self._sink is not None:
            # Drain the handoff queue to disk before the file closes —
            # a clean shutdown never loses an offered span.  The tracer
            # reverts to deque mode so a late record() cannot touch the
            # closed sink (or the about-to-retire metric block).
            self._sink.close()
            self._tracer.attach_sink(None)
        if self._metrics_registry is not None:
            # Fold the server block's final counters into the registry's
            # retired accumulators: fleet_snapshot() keeps reporting the
            # full run after shutdown, with the shared memory released.
            self._stats.metrics = None
            self._metrics = None
            self._tracer.attach_metrics(None)
            self._metrics_registry.retire("server")

    def close(self, drain: bool = True) -> None:
        """Alias for :meth:`shutdown` (context-manager symmetry with
        the other fleet components)."""
        self.shutdown(drain=drain)

    def __enter__(self) -> "RecommendationServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _base_key(self, session: Session, k: int) -> tuple:
        """Version-less cache identity — the ``(prefix_items, k,
        user_id)`` arguments of :meth:`ExplanationCache.key`; the
        executing worker supplies the version."""
        items = list(session.items)
        if len(items) < 2:
            raise ValueError(
                "serving requires sessions with >= 2 items (prefix + "
                f"next-item slot); got {len(items)}")
        prefix = items[:-1][-self._max_session_length:]
        user = session.user_id if self._start_from == "user" else None
        return (tuple(prefix), k, user)

    def _worker(self) -> None:
        try:
            while True:
                batch = self._scheduler.next_batch()
                if batch is None:
                    return
                self._process(batch)
        except BaseException as exc:  # pragma: no cover - last resort
            # The worker loop itself died (next_batch raised, or
            # _process's own failure handler failed).  Fail everything
            # still queued instead of letting callers hang on futures
            # no surviving worker will ever cut.
            for request in self._scheduler.close(drain=False):
                if not request.future.done():
                    request.future.set_exception(exc)
            raise

    def _process(self, batch: List[PendingRequest]) -> None:
        try:
            self._execute(batch)
        except BaseException as exc:  # worker must never die silently
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(exc)

    def _execute(self, group: List[PendingRequest]) -> None:
        """Serve one coalesced micro-batch as a single superset walk.

        A mixed-k flush used to execute one sub-batch per distinct k,
        so minority-k callers queued behind every other group's full
        walk.  The walk and score matrix are k-independent, so one
        ``recommend`` at ``max(ks)`` serves every row; rows wanting a
        smaller k re-run the deterministic row-local :func:`_top_k`
        selection on their own score row — bit-identical to a separate
        per-k execution (pinned by the serving tests), unlike a naive
        prefix slice of the max-k ranking whose tie order can depend on
        the partition point.

        Rows come back **unrendered** from both worker modes;
        explanations are rendered here, exactly once, at the moment the
        result is admitted to the cache (``render_path`` is
        deterministic in the path values and the KG, so this is
        bit-identical to the old render-in-worker wire format while
        keeping strings out of the ring payloads).

        Shared computation (when ``dedup``/``walk_memo_size`` are on):
        duplicate rows within the flush collapse to one walk at the max
        ``k`` of their group, and thread mode consults the cross-flush
        :class:`WalkMemo` before walking at all — rankings and
        explanations exact by construction because every original row
        re-runs the tie-safe row-local ``_top_k`` on a full score row;
        score bits additionally match dedup-off whenever the walk-batch
        composition is preserved, and sit within the documented
        last-ulp batch-shape tolerance when collapsing shrinks a
        multi-row flush (see ``repro.serving.memo``).  Sampled requests
        get enqueue/flush/transport/render/respond spans recorded
        against their trace id, plus the worker-side collate/exec/walk/
        top-k spans echoed over the transport.
        """
        pickup = perf_counter()
        self._stats.record_batch(len(group))
        metrics, tracer = self._metrics, self._tracer
        sampled = [int(r.payload.trace) for r in group if r.payload.trace]
        for request in group:
            wait = pickup - request.enqueued_at
            if metrics is not None:
                metrics.observe("enqueue_wait_seconds", wait)
            if request.payload.trace:
                tracer.record(request.payload.trace, "enqueue", "server",
                              request.enqueued_at, wait)
        ks = [int(request.payload.k) for request in group]
        examples = [(list(request.payload.session.items[:-1]),
                     request.payload.session.items[-1],
                     request.payload.session.user_id)
                    for request in group]
        flush_dur = perf_counter() - pickup
        if metrics is not None:
            metrics.observe("batch_flush_seconds", flush_dur)
        for trace in sampled:
            tracer.record(trace, "flush", "server", pickup, flush_dur)
        cand_rows = None
        if self._cascade is not None:
            # First stage: per-row candidate sets from the (memoized)
            # provider, keyed by the same truncated prefix + user the
            # cache key uses.  Strictly per row — never unioned — so a
            # session's ranking can't depend on its batch-mates.
            c0 = perf_counter()
            cand_rows = [
                self._cascade.plan(request.payload.base_key[0],
                                   request.payload.base_key[2])
                for request in group]
            cascade_dur = perf_counter() - c0
            if metrics is not None:
                metrics.count("cascade_candidates_total",
                              sum(len(c) for c in cand_rows))
            for trace in sampled:
                tracer.record(trace, "cascade", "server", c0, cascade_dur)
        n = len(group)
        # Shared-computation plan (repro.serving.memo): collapse
        # duplicate rows before any transport or walk.  The within-
        # flush identity is the walk input — (truncated suffix, user
        # anchor, exact per-row candidate set); model version, store
        # generation, and cascade identity are batch-constant, so they
        # ride the memo key, not the plan.
        keys = None
        uniq: List[int] = list(range(n))
        row_map: List[int] = list(range(n))
        if self._dedup or self._memo.capacity > 0:
            keys = [(request.payload.base_key[0],
                     request.payload.base_key[2],
                     None if cand_rows is None
                     else tuple(int(c) for c in cand_rows[row]))
                    for row, request in enumerate(group)]
        if self._dedup and keys is not None:
            uniq, row_map = dedup_plan(keys)
            if len(uniq) < n:
                self._stats.record_dedup(n - len(uniq))
                if metrics is not None:
                    metrics.count("dedup_rows_total", n - len(uniq))
        # Each unique row walks once at the max k over its duplicate
        # group; every original row re-selects its own top-k from the
        # shared full score row (tie-safe: _top_k partitions each row
        # independently, so single-row re-selection is bit-identical
        # to what a dedicated walk would have picked).
        uniq_ks = [0] * len(uniq)
        for row, j in enumerate(row_map):
            uniq_ks[j] = max(uniq_ks[j], ks[row])
        t0 = perf_counter()
        if self._procpool is not None:
            # Process mode: the worker process collates, walks, and
            # selects each row's own k; this dispatcher thread only
            # marshals.  The worker reports the model version it
            # actually executed with (a swap broadcast lands between
            # batches, never mid-batch), which is what the results are
            # cached under.  Sampled trace ids ride the request payload
            # and the worker's batch spans come back on the response.
            # When the flush collapsed rows, only the unique rows
            # travel; the dedup trailer tells the worker how to map
            # them back and the pool fans results out per original row.
            worker_spans: List[tuple] = []
            worker_rows: List[tuple] = []
            if len(uniq) < n:
                exec_examples = [examples[i] for i in uniq]
                exec_ks = uniq_ks
                exec_cands = (None if cand_rows is None
                              else [[int(c) for c in cand_rows[i]]
                                    for i in uniq])
                dedup_arg: Optional[tuple] = (row_map, ks)
            else:
                exec_examples, exec_ks = examples, ks
                exec_cands = (None if cand_rows is None
                              else [[int(c) for c in row]
                                    for row in cand_rows])
                dedup_arg = None
            version, rows = self._procpool.execute(
                exec_examples, exec_ks,
                traces=[int(r.payload.trace) for r in group]
                if sampled else None,
                span_sink=worker_spans,
                row_sink=worker_rows if self._trace_rows else None,
                candidates=exec_cands,
                dedup=dedup_arg)
            raw = [(row[0], row[1],
                    tuple(None if blob is None
                          else SemanticPath(entities=blob[0],
                                            relations=blob[1],
                                            prob=blob[2])
                          for blob in row[2]))
                   for row in rows]
            if sampled and worker_spans:
                tracer.record_batch_spans(sampled, "worker", worker_spans)
            if worker_rows:
                # Per-request attribution records computed worker-side
                # (frontier mass / k share) — one "row" span each.
                tracer.record_rows(worker_rows, "worker", t0)
        elif not self._dedup and self._memo.capacity == 0:
            # Legacy thread path, byte-for-byte the pre-shared-compute
            # behavior (the differential tests diff against this).
            collated = collate_examples(examples, self._max_session_length)
            # One atomic read per batch: every row of this micro-batch
            # is answered by the same model generation, and the results
            # are cached under that generation's version tag (which may
            # be newer than the version the submitter looked up).
            agent, version = self._live()
            kmax = max(ks)
            constraint = None
            if cand_rows is not None:
                from repro.cascade import build_constraint

                constraint = build_constraint(
                    agent, cand_rows, agent.config.path_length)
            local_spans: Optional[List[tuple]] = [] if sampled else None
            row_frontier: Optional[List] = (
                [] if (sampled and self._trace_rows) else None)
            with self._pool.checkout() as workspace:
                workspace.spans = local_spans
                workspace.row_frontier = row_frontier
                try:
                    rec = agent.recommend(collated, k=kmax,
                                          workspace=workspace,
                                          candidates=constraint)
                finally:
                    workspace.spans = None
                    workspace.row_frontier = None
            raw = [self._pack_row(rec, row, ks[row], kmax)
                   for row in range(len(group))]
            exec_dur = perf_counter() - t0
            if metrics is not None:
                metrics.count("exec_batches_total")
                metrics.count("exec_rows_total", len(group))
                metrics.observe("exec_seconds", exec_dur)
            if local_spans:
                tracer.record_batch_spans(sampled, "server", local_spans)
            if row_frontier is not None and local_spans:
                # Same attribution math the process workers run: walk
                # time by frontier-mass share, top-k time by k share.
                tracer.record_rows(
                    attribute_rows(
                        [int(r.payload.trace) for r in group], ks,
                        row_frontier, local_spans),
                    "server", t0)
            for trace in sampled:
                tracer.record(trace, "exec", "server", t0, exec_dur)
        else:
            # Shared-computation thread path: memo lookup per unique
            # row, one walk over the misses, per-original-row top-k
            # re-selection from full score rows.  Memo entries store
            # the full dense row (any k re-selects exactly) plus the
            # per-item path dict (k-independent by construction).
            agent, version = self._live()
            store_token = agent.env.fingerprint()
            use_memo = self._memo.capacity > 0
            # The flush width (max truncated prefix length over ALL
            # rows) is what legacy collation would pad to; keying and
            # collating by it keeps row reuse bit-exact (see
            # repro.serving.memo).
            flush_width = max(len(key[0]) for key in keys)
            memo_keys = [WalkMemo.key(keys[i][0], keys[i][1], keys[i][2],
                                      version, store_token,
                                      width=flush_width)
                         for i in uniq]
            u_data = [self._memo.get(mk) if use_memo else None
                      for mk in memo_keys]
            miss = [j for j, data in enumerate(u_data) if data is None]
            local_spans = [] if sampled else None
            row_frontier = ([] if (sampled and self._trace_rows)
                            else None)
            miss_ks: List[int] = []
            if miss:
                miss_examples = [examples[uniq[j]] for j in miss]
                miss_ks = [uniq_ks[j] for j in miss]
                constraint = None
                if cand_rows is not None:
                    from repro.cascade import build_constraint

                    constraint = build_constraint(
                        agent, [cand_rows[uniq[j]] for j in miss],
                        agent.config.path_length)
                collated = collate_examples(miss_examples,
                                            self._max_session_length,
                                            width=flush_width)
                w0 = perf_counter()
                with self._pool.checkout() as workspace:
                    workspace.spans = local_spans
                    workspace.row_frontier = row_frontier
                    try:
                        rec = agent.recommend(collated, k=max(miss_ks),
                                              workspace=workspace,
                                              candidates=constraint)
                    finally:
                        workspace.spans = None
                        workspace.row_frontier = None
                walk_dur = perf_counter() - w0
                grouped: List[dict] = [{} for _ in miss]
                for (r, item), path in rec.paths.items():
                    grouped[r][int(item)] = path
                for idx, j in enumerate(miss):
                    entry = (rec.scores[idx].copy(), grouped[idx])
                    u_data[j] = entry
                    if use_memo:
                        self._memo.put(memo_keys[j], entry)
                self._memo.note_walk_cost(len(miss), walk_dur)
            raw = []
            for row in range(n):
                scores_row, paths = u_data[row_map[row]]
                ranked = _top_k(scores_row.reshape(1, -1),
                                int(ks[row]))[0]
                items = [int(it) for it in ranked]
                raw.append((items,
                            [float(scores_row[it]) for it in items],
                            tuple(paths.get(it) for it in items)))
            exec_dur = perf_counter() - t0
            if metrics is not None:
                metrics.count("exec_batches_total")
                # exec_rows_total counts rows actually walked; the
                # hit/dedup'd remainder shows up in the memo/dedup
                # counters instead.
                metrics.count("exec_rows_total", len(miss))
                metrics.observe("exec_seconds", exec_dur)
                if use_memo:
                    metrics.count("walk_memo_hits_total",
                                  len(uniq) - len(miss))
                    metrics.count("walk_memo_misses_total", len(miss))
                    with self._memo_metrics_lock:
                        evictions = self._memo.evictions
                        delta = evictions - self._memo_evictions_seen
                        self._memo_evictions_seen = evictions
                    if delta > 0:
                        metrics.count("walk_memo_evictions_total", delta)
                    metrics.gauge("walk_seconds_saved_total",
                                  self._memo.seconds_saved)
            if local_spans:
                tracer.record_batch_spans(sampled, "server", local_spans)
            if row_frontier is not None and local_spans and miss:
                # Row attribution only covers walked rows; each walked
                # unique is represented by the first sampled original
                # row that mapped to it (memo-hit rows did no walk, so
                # they honestly get no row span).
                rep = []
                for j in miss:
                    trace = 0
                    for row in range(n):
                        if row_map[row] == j and group[row].payload.trace:
                            trace = int(group[row].payload.trace)
                            break
                    rep.append(trace)
                tracer.record_rows(
                    attribute_rows(rep, miss_ks, row_frontier,
                                   local_spans),
                    "server", t0)
            for trace in sampled:
                tracer.record(trace, "exec", "server", t0, exec_dur)
        transport_dur = perf_counter() - t0
        if metrics is not None:
            metrics.observe("transport_seconds", transport_dur)
        for trace in sampled:
            tracer.record(trace, "transport", "server", t0, transport_dur)
        r0 = perf_counter()
        results = []
        n_rendered = 0
        for items, scores, paths in raw:
            rendered = tuple(render_path(path, self._kg)
                             if path is not None else ""
                             for path in paths)
            n_rendered += len(rendered)
            results.append(ServedResult(items=tuple(items),
                                        scores=tuple(scores),
                                        paths=tuple(paths),
                                        explanations=rendered))
        render_dur = perf_counter() - r0
        if metrics is not None:
            metrics.observe("render_seconds", render_dur)
            if n_rendered:
                metrics.count("render_rows_total", n_rendered)
        for trace in sampled:
            tracer.record(trace, "render", "server", r0, render_dur)
        for result, request in zip(results, group):
            t_resp = perf_counter()
            latency = t_resp - request.enqueued_at
            result = replace(result, latency_ms=latency * 1e3)
            self._cache.put(
                ExplanationCache.key(*request.payload.base_key,
                                     cascade=self._cascade_id,
                                     version=version), result)
            self._stats.record_request(latency)
            request.future.set_result(result)
            if request.payload.trace:
                tracer.record(request.payload.trace, "respond", "server",
                              t_resp, perf_counter() - t_resp)

    def _pack_row(self, rec, row: int, k: int, kmax: int) -> tuple:
        """One unrendered ``(items, scores, paths)`` row (thread mode),
        shape-identical to a process worker's unmarshalled wire row so
        both modes share the render-at-admission path."""
        if k == kmax:
            ranked = rec.ranked_items[row]
        else:
            ranked = _top_k(rec.scores[row:row + 1], k)[0]
        items = [int(i) for i in ranked]
        scores = [float(rec.scores[row, i]) for i in items]
        paths: List[Optional[SemanticPath]] = [
            rec.paths.get((row, item)) for item in items]
        return items, scores, tuple(paths)


def naive_recommend_loop(trainer, sessions: Sequence[Session],
                         k: int = 20) -> List[np.ndarray]:
    """The uncoalesced baseline: one ``recommend_sessions`` call per
    session, sequentially — what serving replaces.  Returns each
    session's ranked-item row (used by the benchmark and the
    determinism tests)."""
    ranked = []
    for session in sessions:
        rec = trainer.recommend_sessions([session], k=k)[0]
        ranked.append(rec.ranked_items[0])
    return ranked
