"""The request-coalescing recommendation + explanation server.

A :class:`RecommendationServer` wraps one fitted
:class:`~repro.core.agent.REKSAgent` and turns its batch-oriented
``recommend`` into an interactive-traffic API:

* :meth:`submit` / :meth:`recommend_one` — single-session requests,
  coalesced across callers into micro-batches by a
  :class:`~repro.serving.scheduler.BatchScheduler`;
* :meth:`recommend_many` — bulk traffic (splits oversize lists across
  micro-batches and reuses cached entries);
* a :class:`~repro.serving.pool.WorkspacePool` pins one
  :class:`~repro.core.environment.RolloutWorkspace` per in-flight
  batch so concurrent workers never share scratch buffers;
* an :class:`~repro.serving.cache.ExplanationCache` LRU short-circuits
  repeat (session-suffix, k) requests;
* a :class:`~repro.serving.stats.ServerStats` recorder tracks latency
  percentiles, batch occupancy, and cache efficiency.

Determinism contract: a coalesced micro-batch is collated with the
same routine as :meth:`REKSTrainer.recommend_sessions`
(:func:`repro.data.loader.collate_examples`, prefix = ``items[:-1]``),
and per-row rankings are batch-composition invariant, so the served
``items`` match a synchronous ``recommend_sessions`` call for the same
sessions and ``k`` regardless of how requests were interleaved.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass, replace
from time import perf_counter
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.agent import REKSAgent
from repro.data.loader import collate_examples
from repro.data.schema import Session
from repro.kg.paths import SemanticPath, render_path
from repro.serving.cache import ExplanationCache
from repro.serving.pool import WorkspacePool
from repro.serving.scheduler import (
    BatchScheduler,
    PendingRequest,
    SchedulerClosed,
)
from repro.serving.stats import ServerStats, StatsSnapshot


@dataclass(frozen=True)
class ServedResult:
    """Per-request response: ranked items, scores, rendered paths.

    ``explanations[i]`` is the arrow-form rendering of ``paths[i]``
    (empty string when the item carries no path, e.g. it was reached
    only through the encoder fallback or not at all).
    """

    items: Tuple[int, ...]
    scores: Tuple[float, ...]
    paths: Tuple[Optional[SemanticPath], ...]
    explanations: Tuple[str, ...]
    cached: bool = False
    latency_ms: float = 0.0


@dataclass(frozen=True)
class _Request:
    """Scheduler payload for one session."""

    session: Session
    k: int
    key: tuple


class ServerClosed(RuntimeError):
    """Raised when submitting to a shut-down server."""


class RecommendationServer:
    """Coalesce concurrent single-session requests into shared walks."""

    def __init__(self, agent: REKSAgent, *, max_batch: int = 32,
                 max_wait_ms: float = 2.0, workers: int = 2,
                 cache_size: int = 2048, default_k: int = 20) -> None:
        self._agent = agent
        self._kg = agent.env.built.kg
        self._max_session_length = agent.config.max_session_length
        self._start_from = agent.config.start_from
        self.default_k = default_k
        self._scheduler = BatchScheduler(max_batch=max_batch,
                                         max_wait_ms=max_wait_ms)
        self._pool = WorkspacePool(workers)
        self._cache = ExplanationCache(cache_size)
        self._stats = ServerStats()
        self._shutdown_lock = threading.Lock()
        self._shut_down = False
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"reks-serve-{i}")
            for i in range(workers)]
        for thread in self._threads:
            thread.start()

    @classmethod
    def from_trainer(cls, trainer, **overrides) -> "RecommendationServer":
        """Build a server from a trainer's ``serve_*`` config knobs."""
        cfg = trainer.config
        kwargs = dict(max_batch=cfg.serve_max_batch,
                      max_wait_ms=cfg.serve_max_wait_ms,
                      workers=cfg.serve_workers,
                      cache_size=cfg.serve_cache_size,
                      default_k=cfg.serve_default_k)
        kwargs.update(overrides)
        return cls(trainer.agent, **kwargs)

    # ------------------------------------------------------------------
    # Request API
    # ------------------------------------------------------------------
    def submit(self, session: Session, k: Optional[int] = None) -> Future:
        """Non-blocking submission; the future yields a ServedResult.

        Cache hits resolve the future immediately without touching the
        scheduler.
        """
        if self._shut_down:
            raise ServerClosed("server has been shut down")
        k = self.default_k if k is None else int(k)
        started = perf_counter()
        key = self._key(session, k)
        hit = self._cache.get(key)
        self._stats.record_cache(hit is not None)
        if hit is not None:
            latency = perf_counter() - started
            self._stats.record_request(latency)
            future: Future = Future()
            future.set_result(replace(hit, cached=True,
                                      latency_ms=latency * 1e3))
            return future
        try:
            return self._scheduler.submit(_Request(session, k, key))
        except SchedulerClosed as exc:
            # Lost the race against a concurrent shutdown(): surface
            # the server-level type the API documents.
            raise ServerClosed("server has been shut down") from exc

    def recommend_one(self, session: Session,
                      k: Optional[int] = None) -> ServedResult:
        """Blocking single-session request (the interactive path)."""
        return self.submit(session, k).result()

    def recommend_many(self, sessions: Sequence[Session],
                       k: Optional[int] = None) -> List[ServedResult]:
        """Bulk request: every session is enqueued up front (oversize
        lists split into ``max_batch`` micro-batches) and results come
        back in input order."""
        futures = [self.submit(session, k) for session in sessions]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> StatsSnapshot:
        return self._stats.snapshot()

    def reset_stats(self) -> None:
        self._stats.reset()

    @property
    def cache(self) -> ExplanationCache:
        return self._cache

    @property
    def pool(self) -> WorkspacePool:
        return self._pool

    @property
    def pending(self) -> int:
        return self._scheduler.pending

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self, drain: bool = True) -> None:
        """Stop the workers.

        With ``drain=True`` every already-submitted request still
        completes (its future resolves with a result) before the
        workers exit; with ``drain=False`` queued-but-unstarted
        requests fail with :class:`ServerClosed`.
        """
        with self._shutdown_lock:
            if self._shut_down:
                return
            self._shut_down = True
        abandoned = self._scheduler.close(drain=drain)
        for request in abandoned:
            request.future.set_exception(
                ServerClosed("server shut down before execution"))
        for thread in self._threads:
            thread.join()

    def __enter__(self) -> "RecommendationServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _key(self, session: Session, k: int) -> tuple:
        items = list(session.items)
        if len(items) < 2:
            raise ValueError(
                "serving requires sessions with >= 2 items (prefix + "
                f"next-item slot); got {len(items)}")
        prefix = items[:-1][-self._max_session_length:]
        user = session.user_id if self._start_from == "user" else None
        return ExplanationCache.key(tuple(prefix), k, user)

    def _worker(self) -> None:
        while True:
            batch = self._scheduler.next_batch()
            if batch is None:
                return
            self._process(batch)

    def _process(self, batch: List[PendingRequest]) -> None:
        try:
            # Mixed-k batches execute as one sub-batch per distinct k
            # so every request's top-k is exactly what a synchronous
            # recommend_sessions call with that k would produce.
            groups: dict = {}
            for request in batch:
                groups.setdefault(request.payload.k, []).append(request)
            for k, group in groups.items():
                self._execute(group, k)
        except BaseException as exc:  # worker must never die silently
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(exc)

    def _execute(self, group: List[PendingRequest], k: int) -> None:
        self._stats.record_batch(len(group))
        examples = [(list(request.payload.session.items[:-1]),
                     request.payload.session.items[-1],
                     request.payload.session.user_id)
                    for request in group]
        collated = collate_examples(examples, self._max_session_length)
        with self._pool.checkout() as workspace:
            rec = self._agent.recommend(collated, k=k,
                                        workspace=workspace)
        for row, request in enumerate(group):
            result = self._pack_row(rec, row)
            latency = perf_counter() - request.enqueued_at
            result = replace(result, latency_ms=latency * 1e3)
            self._cache.put(request.payload.key, result)
            self._stats.record_request(latency)
            request.future.set_result(result)

    def _pack_row(self, rec, row: int) -> ServedResult:
        items = [int(i) for i in rec.ranked_items[row]]
        scores = [float(rec.scores[row, i]) for i in items]
        paths: List[Optional[SemanticPath]] = []
        rendered: List[str] = []
        for item in items:
            path = rec.paths.get((row, item))
            paths.append(path)
            rendered.append(render_path(path, self._kg)
                            if path is not None else "")
        return ServedResult(items=tuple(items), scores=tuple(scores),
                            paths=tuple(paths),
                            explanations=tuple(rendered))


def naive_recommend_loop(trainer, sessions: Sequence[Session],
                         k: int = 20) -> List[np.ndarray]:
    """The uncoalesced baseline: one ``recommend_sessions`` call per
    session, sequentially — what serving replaces.  Returns each
    session's ranked-item row (used by the benchmark and the
    determinism tests)."""
    ranked = []
    for session in sessions:
        rec = trainer.recommend_sessions([session], k=k)[0]
        ranked.append(rec.ranked_items[0])
    return ranked
