"""Request-coalescing serving layer for REKS recommendation traffic.

The batch-oriented core (:class:`~repro.core.agent.REKSAgent`) answers
one ``SessionBatch`` at a time on one thread; this package turns it
into an interactive service: concurrent single-session requests are
coalesced into micro-batches (flushed on size or deadline, whichever
first), executed by a pool of workers each pinning its own
:class:`~repro.core.environment.RolloutWorkspace`, and answered with
per-request rankings plus rendered explanation paths.  See
``README.md`` in this directory for the architecture note.

Quickstart::

    with trainer.serve(max_batch=32, max_wait_ms=2.0) as server:
        result = server.recommend_one(session, k=10)
        print(result.items, result.explanations[0])
        print(server.stats().to_dict())
"""

from repro.serving.cache import ExplanationCache
from repro.serving.memo import WalkMemo, dedup_plan
from repro.serving.pool import WorkspacePool
from repro.serving.scheduler import (
    BatchScheduler,
    PendingRequest,
    SchedulerClosed,
)
from repro.serving.server import (
    RecommendationServer,
    ServedResult,
    ServerClosed,
    naive_recommend_loop,
)
from repro.serving.stats import ServerStats, StatsSnapshot

__all__ = [
    "BatchScheduler",
    "PendingRequest",
    "SchedulerClosed",
    "ExplanationCache",
    "WalkMemo",
    "dedup_plan",
    "WorkspacePool",
    "RecommendationServer",
    "ServedResult",
    "ServerClosed",
    "naive_recommend_loop",
    "ServerStats",
    "StatsSnapshot",
]
