"""Shared-computation primitives: in-flush dedup + the walk memo.

Real session traffic is repeat-skewed — hot sessions and shared
suffixes recur both *within* a coalesced flush (two identical rows in
one micro-batch) and *across* flushes (the same suffix asked again a
moment later, often at a different ``k``).  The post-render
:class:`~repro.serving.cache.ExplanationCache` only catches the exact
``(suffix, k, user, cascade, version)`` repeat; everything else walks
again even though the walk is per-row deterministic and k-independent.

Two layers close that gap:

* :func:`dedup_plan` collapses duplicate rows inside one flush so each
  unique ``(suffix, user, candidate-set)`` walks **once** (at the max
  ``k`` over its duplicate group) and every original row re-selects its
  own top-k from the shared full score row;
* :class:`WalkMemo` caches the **numeric** walk output across flushes:
  the full dense score row plus the per-item path blobs for every
  terminal item.  Entries are renders-deferred and k-agnostic — a
  repeat suffix at *any* ``k`` is a memo hit + a deterministic
  :func:`~repro.core.agent._top_k` re-selection on the stored row, no
  walk, no policy forward.

Exactness: ``_top_k`` partitions each score row independently, so
re-selecting ``k`` items from the stored full row is bit-identical to
what a fresh walk's own selection would produce (a *prefix slice* of a
larger-k ranking is NOT — its tie order can depend on the partition
point — which is why entries store the full row, never a truncated
ranking).  Paths come from ``_best_paths``, which keeps one best path
per *terminal item* regardless of ``k``, so the stored path dict covers
any selection.  Two batch-coupling effects would silently break row
reuse at the float-bit level and are handled explicitly: the encoder
runs over the *padded* batch layout, so memo keys carry the flush
width and miss walks collate at that width (see
:meth:`WalkMemo.key`); and the encoder-fallback floor is per row (see
``REKSAgent._encoder_fallback``), never a batch statistic.  One
coupling is irreducible: the policy forwards degree-bucketed frontier
rows of the whole flush together, so BLAS block-reduction order ties
each row's float bits to the *batch composition*.  Stored rows
therefore replay bit-exactly whenever composition is preserved
(sequential streams, any transport), while collapsing rows out of a
multi-row flush can move other rows' scores by the last ulp — the
same tolerance the coalescing layer has always documented for
batch-shape changes.  Rankings and rendered paths are invariant
either way; the serving differential tests pin the exact cases
bitwise and the hot-replay bench gates the coalesced case on
rankings/explanations equality plus rtol 1e-6 scores.

Invalidation: keys carry the model ``version`` and a ``store_token``
(the environment fingerprint, which changes on both staged-edge
ingestion and shard compaction), so a hot swap or a graph change makes
stale entries unreachable — they age out of the LRU exactly like
:class:`ExplanationCache` entries do after a swap.  The candidate set
rides in the key too (the exact per-row tuple, strictly finer than the
``(provider_id, M)`` cascade identity), so a constrained walk can never
answer for a differently-constrained repeat.

Layering: the explanation cache sits **above** the memo (hit = no
scheduler, no render); the memo sits **below** the flush (hit = no
walk, but top-k re-selection + render still run).  A request can miss
the cache and hit the memo — that is the common case for a hot suffix
cycling through ks.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, List, Optional, Sequence, Tuple


def dedup_plan(keys: Sequence[Hashable]
               ) -> Tuple[List[int], List[int]]:
    """Collapse duplicate row keys to first occurrences.

    Returns ``(uniq, row_map)``: ``uniq[j]`` is the original index of
    the j-th unique key (first-occurrence order, so the unique batch
    preserves the flush's row order) and ``row_map[i]`` is original row
    i's index into the unique batch.  ``len(uniq) == len(keys)`` means
    nothing collapsed.
    """
    index: Dict[Hashable, int] = {}
    uniq: List[int] = []
    row_map: List[int] = []
    for i, key in enumerate(keys):
        j = index.get(key)
        if j is None:
            j = len(uniq)
            index[key] = j
            uniq.append(i)
        row_map.append(j)
    return uniq, row_map


class WalkMemo:
    """Thread-safe LRU over numeric walk outputs, keyed by walk inputs.

    Values are ``(scores_row, paths)`` pairs — the full dense float64
    score row (so any ``k`` re-selects exactly) and a ``{item: path}``
    dict covering every terminal item.  The memo never inspects the
    path payload, so thread mode stores :class:`SemanticPath` objects
    while process workers store raw ``(entities, relations, prob)``
    blobs.

    ``capacity`` 0 disables the memo (every lookup is a miss and
    :meth:`put` is a no-op), keeping callers branch-free.

    :attr:`seconds_saved` estimates walk time avoided: each hit banks
    the current EWMA of per-row walk seconds (fed by
    :meth:`note_walk_cost` after real walks) — an honest estimate, not
    a measurement, surfaced as the ``walk_seconds_saved_total`` gauge.
    """

    _EWMA_ALPHA = 0.2

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, tuple]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.seconds_saved = 0.0
        self._row_seconds = 0.0

    @staticmethod
    def key(prefix_items: Sequence[int], user_id: Optional[int],
            candidates: Optional[Tuple[int, ...]],
            version: int, store_token: str, width: int = 0) -> Tuple:
        """Memo key for one walk row.

        ``prefix_items`` must already be truncated to the suffix the
        model consumes; ``candidates`` is the exact candidate tuple the
        walk was constrained with (None = unconstrained);
        ``store_token`` is the environment fingerprint — it changes on
        staged-edge ingestion *and* compaction, so graph changes
        over-invalidate conservatively (a spurious miss re-walks; a
        spurious hit would be wrong).

        ``width`` is the padded batch width the row was collated at.
        Per-row numeric outputs are bit-identical across batches only
        at equal padded width (the encoder runs over the padded
        layout), so a repeat in a differently-shaped flush is a clean
        miss — a re-walk, never an almost-right row.  Serving passes
        the *flush* width (max truncated prefix length over the
        flush), which repeat-heavy traffic keeps stable.
        """
        return (tuple(int(i) for i in prefix_items), user_id,
                candidates, int(version), store_token, int(width))

    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> Optional[tuple]:
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self.seconds_saved += self._row_seconds
            return value

    def put(self, key: Hashable, value: tuple) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def note_walk_cost(self, rows: int, seconds: float) -> None:
        """Fold one real walk's per-row cost into the savings EWMA."""
        if rows <= 0:
            return
        per_row = float(seconds) / rows
        with self._lock:
            self._row_seconds = (
                per_row if self._row_seconds == 0.0
                else (1.0 - self._EWMA_ALPHA) * self._row_seconds
                + self._EWMA_ALPHA * per_row)

    # ------------------------------------------------------------------
    def entries_by_version(self) -> Dict[int, int]:
        """Live entry counts per model version (key index 3) — the
        stale-entry drain a hot swap leaves behind is visible here."""
        with self._lock:
            counts: Dict[int, int] = {}
            for key in self._entries:
                version = int(key[3])
                counts[version] = counts.get(version, 0) + 1
            return counts

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop entries but keep the counters (eviction-equivalent)."""
        with self._lock:
            self._entries.clear()
