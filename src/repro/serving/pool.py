"""Pool of pinned rollout workspaces for concurrent batch execution.

Each serving worker checks one :class:`RolloutWorkspace` out per
micro-batch, so the grow-only scratch buffers stay warm across requests
(no per-request allocation churn) while never being shared between two
concurrent walks.  LIFO hand-out keeps the hottest buffers in use.
"""

from __future__ import annotations

import contextlib
import queue
import threading
from typing import Iterator, List

from repro.core.environment import RolloutWorkspace


class WorkspacePool:
    """Fixed-size pool of single-owner :class:`RolloutWorkspace` objects.

    ``checkout`` blocks while every workspace is in use, which also
    back-pressures a misconfigured server (more workers than
    workspaces) instead of corrupting buffers.

    Failure containment: the pool never shrinks.  If pinning a
    workspace fails (a corrupted checkout flag) or a worker's release
    raises, the suspect workspace is replaced with a fresh one before
    the error propagates — losing warm buffers once is recoverable,
    but silently losing a pool slot would eventually deadlock every
    ``checkout`` behind it.
    """

    def __init__(self, size: int, metrics=None) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.size = size
        # Optional repro.telemetry MetricBlock every pooled workspace
        # carries (walk/gather instrumentation records through it);
        # replacements inherit it so a swapped slot keeps reporting.
        self.metrics = metrics
        self._lock = threading.Lock()
        self._workspaces: List[RolloutWorkspace] = [
            RolloutWorkspace() for _ in range(size)]
        for workspace in self._workspaces:
            workspace.metrics = metrics
        self._idle: "queue.LifoQueue[RolloutWorkspace]" = queue.LifoQueue()
        for workspace in self._workspaces:
            self._idle.put(workspace)

    def _replace(self, broken: RolloutWorkspace) -> None:
        """Swap a suspect workspace for a fresh one (slot count kept)."""
        fresh = RolloutWorkspace()
        fresh.metrics = self.metrics
        with self._lock:
            try:
                index = self._workspaces.index(broken)
                self._workspaces[index] = fresh
            except ValueError:  # pragma: no cover - foreign workspace
                self._workspaces.append(fresh)
        self._idle.put(fresh)

    @contextlib.contextmanager
    def checkout(self) -> Iterator[RolloutWorkspace]:
        """Exclusive use of one workspace for the ``with`` block."""
        workspace = self._idle.get()
        try:
            workspace.checkout()
        except BaseException:
            # The slot must go back even when pinning fails, or the
            # pool shrinks by one and eventually deadlocks checkout.
            self._replace(workspace)
            raise
        try:
            yield workspace
        finally:
            try:
                workspace.release()
            except BaseException:  # pragma: no cover - defensive
                self._replace(workspace)
                raise
            self._idle.put(workspace)

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Total bytes currently held across every pooled workspace."""
        with self._lock:
            return sum(ws.nbytes for ws in self._workspaces)

    @property
    def checkouts(self) -> int:
        with self._lock:
            return sum(ws.checkouts for ws in self._workspaces)

    @property
    def idle(self) -> int:
        return self._idle.qsize()
