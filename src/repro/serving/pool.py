"""Pool of pinned rollout workspaces for concurrent batch execution.

Each serving worker checks one :class:`RolloutWorkspace` out per
micro-batch, so the grow-only scratch buffers stay warm across requests
(no per-request allocation churn) while never being shared between two
concurrent walks.  LIFO hand-out keeps the hottest buffers in use.
"""

from __future__ import annotations

import contextlib
import queue
from typing import Iterator, List

from repro.core.environment import RolloutWorkspace


class WorkspacePool:
    """Fixed-size pool of single-owner :class:`RolloutWorkspace` objects.

    ``checkout`` blocks while every workspace is in use, which also
    back-pressures a misconfigured server (more workers than
    workspaces) instead of corrupting buffers.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.size = size
        self._workspaces: List[RolloutWorkspace] = [
            RolloutWorkspace() for _ in range(size)]
        self._idle: "queue.LifoQueue[RolloutWorkspace]" = queue.LifoQueue()
        for workspace in self._workspaces:
            self._idle.put(workspace)

    @contextlib.contextmanager
    def checkout(self) -> Iterator[RolloutWorkspace]:
        """Exclusive use of one workspace for the ``with`` block."""
        workspace = self._idle.get()
        workspace.checkout()
        try:
            yield workspace
        finally:
            workspace.release()
            self._idle.put(workspace)

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Total bytes currently held across every pooled workspace."""
        return sum(ws.nbytes for ws in self._workspaces)

    @property
    def checkouts(self) -> int:
        return sum(ws.checkouts for ws in self._workspaces)

    @property
    def idle(self) -> int:
        return self._idle.qsize()
