"""LRU cache of served recommendation + explanation results.

Keys are the exact model inputs of a request — the (truncated) session
suffix the encoder and walk actually see, the requested ``k``, the
user id when the walk starts from the user entity, and the **model
version** that computed the answer — so a hit is guaranteed to be the
same answer the batch path would recompute.  Values are immutable
:class:`~repro.serving.server.ServedResult` payloads, safe to share
across callers.

The version tag is what makes zero-downtime hot-swaps possible: a
:meth:`~repro.serving.server.RecommendationServer.swap_model` bumps
the server's live version, so post-swap lookups miss the stale entries
(computed by the previous weights) without flushing them — warm
traffic racing the swap still hits its own version's entries, and the
stale generation simply ages out of the LRU.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, Optional, Tuple


class ExplanationCache:
    """Thread-safe LRU keyed by (session-suffix, k) with hit/miss counters.

    ``capacity`` 0 disables caching (every lookup is a miss and
    :meth:`put` is a no-op), which keeps the server code branch-free.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key(prefix_items: Tuple[int, ...], k: int,
            user_id: Optional[int] = None,
            cascade: Optional[Tuple[str, int]] = None,
            version: int = 0) -> Tuple:
        """Cache key for one request.

        ``prefix_items`` must already be truncated to the suffix the
        model consumes (``max_session_length`` last prefix items);
        ``user_id`` is only part of the identity for user-anchored
        walks (``start_from="user"``); ``cascade`` is the serving
        cascade identity ``(provider_id, M)`` (None when the cascade
        is off) — candidate-constrained answers must never be replayed
        under a different cascade configuration, or after toggling it;
        ``version`` is the model version whose weights computed (or
        would compute) the answer.
        """
        return (tuple(int(i) for i in prefix_items), int(k), user_id,
                cascade, int(version))

    # ------------------------------------------------------------------
    def get(self, key: Hashable):
        """The cached value or None; counts the hit/miss and refreshes
        recency."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    # ------------------------------------------------------------------
    def entries_by_version(self) -> Dict[int, int]:
        """Live entry counts per model version (key index 4).

        After a hot swap the stale generation's count only shrinks as
        the LRU evicts — this is how ``cli top`` and ``/metrics.json``
        make that drain visible."""
        with self._lock:
            counts: Dict[int, int] = {}
            for key in self._entries:
                version = int(key[4])
                counts[version] = counts.get(version, 0) + 1
            return counts

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop entries but keep the counters (eviction-equivalent)."""
        with self._lock:
            self._entries.clear()
