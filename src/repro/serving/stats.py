"""Latency / throughput / occupancy accounting for the serving layer.

One :class:`ServerStats` instance is shared by every worker of a
:class:`~repro.serving.server.RecommendationServer`; all mutation goes
through a single lock (the recorded quantities are tiny relative to a
batch execution, so contention is negligible).  :meth:`snapshot`
returns an immutable :class:`StatsSnapshot` with the derived
percentiles, suitable for JSON emission.

Memory is **bounded at any request volume**: latencies feed a
log-bucketed :class:`~repro.telemetry.block.LocalHistogram` (exact
count/sum/min/max, ~1% bucketed quantiles) plus a fixed 4096-element
:class:`~repro.telemetry.block.Reservoir` whose uniform sample gives
exact percentiles until it overflows and unbiased ones after; swap
latencies keep only the most recent window.  The old implementation
appended every latency to a Python list — a 1M-request soak grew it
without bound (pinned flat by ``tests/test_telemetry.py`` now).

When a ``metrics`` block (:class:`~repro.telemetry.block.MetricBlock`)
is attached, every recording is mirrored into it so the fleet
registry's merged snapshot sees the serving parent's counters without
a second instrumentation site.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Optional, Tuple

import numpy as np

from repro.telemetry.block import LocalHistogram, Reservoir

SWAP_WINDOW = 64
RESERVOIR_SIZE = 4096


@dataclass(frozen=True)
class StatsSnapshot:
    """Point-in-time view of a server's counters (latencies in ms).

    ``cache_by_version`` splits the hit/miss counters by the model
    version a lookup was keyed against, which is how hot-swap rollovers
    are observed: right after a swap the new version's misses climb
    while the stale version stops being queried at all.
    """

    requests: int
    batches: int
    cache_hits: int
    cache_misses: int
    duration_s: float
    throughput_rps: float
    latency_ms_mean: float
    latency_ms_p50: float
    latency_ms_p95: float
    latency_ms_p99: float
    batch_occupancy: Dict[int, int] = field(default_factory=dict)
    mean_occupancy: float = 0.0
    cache_by_version: Dict[int, Dict[str, int]] = field(default_factory=dict)
    swaps: int = 0
    swap_latency_ms: Tuple[float, ...] = ()
    # Shared-computation plane: rows collapsed by in-flush dedup, the
    # walk memo's counters, and live entry counts per model version for
    # both caches (how stale-entry drain after a hot swap is observed).
    dedup_rows: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    memo_evictions: int = 0
    cache_entries_by_version: Dict[int, int] = field(default_factory=dict)
    memo_entries_by_version: Dict[int, int] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def memo_hit_rate(self) -> float:
        total = self.memo_hits + self.memo_misses
        return self.memo_hits / total if total else 0.0

    def to_dict(self) -> dict:
        by_version = {}
        for version in sorted(self.cache_by_version):
            split = self.cache_by_version[version]
            total = split["hits"] + split["misses"]
            by_version[str(version)] = {
                "hits": split["hits"],
                "misses": split["misses"],
                "hit_rate": (split["hits"] / total) if total else 0.0,
            }
        return {
            "requests": self.requests,
            "batches": self.batches,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "cache_by_version": by_version,
            "swaps": self.swaps,
            "swap_latency_ms": list(self.swap_latency_ms),
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "latency_ms": {
                "mean": self.latency_ms_mean,
                "p50": self.latency_ms_p50,
                "p95": self.latency_ms_p95,
                "p99": self.latency_ms_p99,
            },
            "batch_occupancy": {str(size): count for size, count
                                in sorted(self.batch_occupancy.items())},
            "mean_occupancy": self.mean_occupancy,
            "dedup_rows": self.dedup_rows,
            "walk_memo": {
                "hits": self.memo_hits,
                "misses": self.memo_misses,
                "evictions": self.memo_evictions,
                "hit_rate": self.memo_hit_rate,
                "entries_by_version": {
                    str(v): n for v, n
                    in sorted(self.memo_entries_by_version.items())},
            },
            "cache_entries_by_version": {
                str(v): n for v, n
                in sorted(self.cache_entries_by_version.items())},
        }


class ServerStats:
    """Thread-safe recorder of per-request and per-batch telemetry."""

    def __init__(self, metrics=None) -> None:
        self._lock = threading.Lock()
        self._requests = 0
        self._lat_hist = LocalHistogram()
        self._lat_sample = Reservoir(RESERVOIR_SIZE)
        self._occupancy: Dict[int, int] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_by_version: Dict[int, Dict[str, int]] = {}
        self._swaps = 0
        self._swap_latencies_s: deque = deque(maxlen=SWAP_WINDOW)
        self._dedup_rows = 0
        self._started_at: Optional[float] = None
        self._last_event_at: Optional[float] = None
        # Optional shared-memory mirror (repro.telemetry MetricBlock).
        self.metrics = metrics
        # Optional cache/memo references (attach_caches): snapshots
        # read their live per-version entry counts and the memo's own
        # hit/miss/eviction counters (each has its own lock, so the
        # reads happen outside ours).
        self._cache_ref = None
        self._memo_ref = None

    def attach_caches(self, cache=None, memo=None) -> None:
        """Let snapshots report the live ExplanationCache / WalkMemo
        state (per-version entry counts + memo counters)."""
        self._cache_ref = cache
        self._memo_ref = memo

    @property
    def nbytes(self) -> int:
        """Bound of the latency state (flat regardless of volume)."""
        return int(self._lat_hist.buckets.nbytes
                   + self._lat_sample.capacity * 8
                   + SWAP_WINDOW * 8)

    # ------------------------------------------------------------------
    def record_request(self, latency_s: float) -> None:
        """One completed request (queue wait + batch execution)."""
        now = perf_counter()
        with self._lock:
            if self._started_at is None:
                self._started_at = now - latency_s
            self._last_event_at = now
            self._requests += 1
            self._lat_hist.observe(latency_s)
            self._lat_sample.add(latency_s)
        if self.metrics is not None:
            self.metrics.count("requests_total")
            self.metrics.observe("request_latency_seconds", latency_s)

    def record_batch(self, size: int) -> None:
        """One executed micro-batch of ``size`` coalesced requests."""
        with self._lock:
            self._occupancy[size] = self._occupancy.get(size, 0) + 1
        if self.metrics is not None:
            self.metrics.count("batches_total")

    def record_cache(self, hit: bool, version: int = 0) -> None:
        """One cache lookup, attributed to the model version it keyed."""
        with self._lock:
            split = self._cache_by_version.setdefault(
                int(version), {"hits": 0, "misses": 0})
            if hit:
                self._cache_hits += 1
                split["hits"] += 1
            else:
                self._cache_misses += 1
                split["misses"] += 1
        if self.metrics is not None:
            self.metrics.count("cache_hits_total" if hit
                               else "cache_misses_total")

    def record_dedup(self, collapsed: int) -> None:
        """``collapsed`` duplicate rows folded away by in-flush dedup
        (the metric mirror happens in the server, which knows whether a
        flush actually collapsed anything)."""
        if collapsed <= 0:
            return
        with self._lock:
            self._dedup_rows += int(collapsed)

    def record_swap(self, latency_s: float) -> None:
        """One completed model hot-swap."""
        with self._lock:
            self._swaps += 1
            self._swap_latencies_s.append(latency_s)
        if self.metrics is not None:
            self.metrics.count("swaps_total")
            self.metrics.observe("swap_latency_seconds", latency_s)

    def reset(self) -> None:
        """Zero every counter (used between benchmark phases)."""
        with self._lock:
            self._requests = 0
            self._lat_hist.reset()
            self._lat_sample.reset()
            self._occupancy.clear()
            self._cache_hits = 0
            self._cache_misses = 0
            self._cache_by_version.clear()
            self._swaps = 0
            self._swap_latencies_s.clear()
            self._dedup_rows = 0
            self._started_at = None
            self._last_event_at = None

    # ------------------------------------------------------------------
    def snapshot(self) -> StatsSnapshot:
        with self._lock:
            requests = self._requests
            hist = self._lat_hist.snapshot()
            sample = self._lat_sample.values()
            sample_exact = self._lat_sample.seen <= self._lat_sample.capacity
            occupancy = dict(self._occupancy)
            hits, misses = self._cache_hits, self._cache_misses
            by_version = {v: dict(split) for v, split
                          in self._cache_by_version.items()}
            swaps = self._swaps
            swap_ms = tuple(s * 1e3 for s in self._swap_latencies_s)
            dedup_rows = self._dedup_rows
            if self._started_at is not None \
                    and self._last_event_at is not None:
                duration = max(self._last_event_at - self._started_at, 1e-9)
            else:
                duration = 0.0
        if requests:
            mean = hist.mean * 1e3  # exact (count/sum are exact)
            if sample_exact:
                # The reservoir still holds every observation: identical
                # numbers to the old keep-everything implementation.
                p50, p95, p99 = np.percentile(sample, (50, 95, 99)) * 1e3
            else:
                # Uniform 4096-sample percentiles, clamped by the exact
                # histogram extremes.
                p50, p95, p99 = np.clip(
                    np.percentile(sample, (50, 95, 99)),
                    hist.min, hist.max) * 1e3
        else:
            p50 = p95 = p99 = mean = 0.0
        cache_ref, memo_ref = self._cache_ref, self._memo_ref
        cache_entries = (cache_ref.entries_by_version()
                         if cache_ref is not None else {})
        if memo_ref is not None:
            memo_entries = memo_ref.entries_by_version()
            memo_hits, memo_misses = memo_ref.hits, memo_ref.misses
            memo_evictions = memo_ref.evictions
        else:
            memo_entries = {}
            memo_hits = memo_misses = memo_evictions = 0
        sizes = np.array(sorted(occupancy), dtype=np.float64)
        counts = np.array([occupancy[int(s)] for s in sizes],
                          dtype=np.float64)
        mean_occ = float((sizes * counts).sum() / counts.sum()) \
            if counts.size else 0.0
        return StatsSnapshot(
            requests=requests,
            batches=int(counts.sum()),
            cache_hits=hits,
            cache_misses=misses,
            duration_s=duration,
            throughput_rps=(requests / duration) if duration else 0.0,
            latency_ms_mean=float(mean),
            latency_ms_p50=float(p50),
            latency_ms_p95=float(p95),
            latency_ms_p99=float(p99),
            batch_occupancy=occupancy,
            mean_occupancy=mean_occ,
            cache_by_version=by_version,
            swaps=swaps,
            swap_latency_ms=swap_ms,
            dedup_rows=dedup_rows,
            memo_hits=memo_hits,
            memo_misses=memo_misses,
            memo_evictions=memo_evictions,
            cache_entries_by_version=cache_entries,
            memo_entries_by_version=memo_entries,
        )
