"""Request coalescing: a thread-safe queue that cuts micro-batches.

Callers :meth:`submit` single payloads and block on the returned
future; worker threads call :meth:`next_batch`, which returns up to
``max_batch`` requests as soon as either

* ``max_batch`` requests are pending (size flush), or
* the **oldest** pending request has waited ``max_wait_ms`` (deadline
  flush — a lone request is never stranded longer than the window).

Everything is stdlib ``threading`` + ``collections.deque`` — no
external dependencies, no busy-waiting (a single condition variable
coordinates submitters and workers).
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from time import perf_counter
from typing import Deque, List, Optional


@dataclass
class PendingRequest:
    """One queued request: opaque payload + completion future."""

    payload: object
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=perf_counter)


class SchedulerClosed(RuntimeError):
    """Raised by :meth:`BatchScheduler.submit` after :meth:`close`."""


class BatchScheduler:
    """Coalesce single-item submissions into bounded micro-batches."""

    def __init__(self, max_batch: int = 32,
                 max_wait_ms: float = 2.0) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(
                f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self.max_batch = max_batch
        self.max_wait_s = max_wait_ms / 1e3
        self._cond = threading.Condition()
        self._pending: Deque[PendingRequest] = deque()
        self._closed = False

    # ------------------------------------------------------------------
    def submit(self, payload: object) -> Future:
        """Enqueue one payload; the future resolves when a worker has
        executed the micro-batch containing it."""
        request = PendingRequest(payload)
        with self._cond:
            if self._closed:
                raise SchedulerClosed("scheduler is closed")
            self._pending.append(request)
            self._cond.notify_all()
        return request.future

    def next_batch(self) -> Optional[List[PendingRequest]]:
        """Block until a micro-batch is due; None once closed and drained.

        An oversize burst (more pending than ``max_batch``) is split:
        each call cuts at most ``max_batch`` requests, oldest first.
        """
        with self._cond:
            while True:
                if self._pending:
                    if self._closed \
                            or len(self._pending) >= self.max_batch:
                        return self._cut()
                    deadline = (self._pending[0].enqueued_at
                                + self.max_wait_s)
                    remaining = deadline - perf_counter()
                    if remaining <= 0:
                        return self._cut()
                    self._cond.wait(timeout=remaining)
                else:
                    if self._closed:
                        return None
                    self._cond.wait()

    def _cut(self) -> List[PendingRequest]:
        count = min(len(self._pending), self.max_batch)
        return [self._pending.popleft() for _ in range(count)]

    # ------------------------------------------------------------------
    def close(self, drain: bool = True) -> List[PendingRequest]:
        """Stop accepting submissions and wake every waiter.

        With ``drain=True`` (the default) queued requests stay pending
        for workers to finish; the returned list is empty.  With
        ``drain=False`` the queue is emptied and the abandoned requests
        are returned so the caller can fail their futures.
        """
        with self._cond:
            self._closed = True
            abandoned: List[PendingRequest] = []
            if not drain:
                abandoned = list(self._pending)
                self._pending.clear()
            self._cond.notify_all()
        return abandoned

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    @property
    def pending(self) -> int:
        with self._cond:
            return len(self._pending)
