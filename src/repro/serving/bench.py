"""Closed-loop load generation against a :class:`RecommendationServer`.

Three measured phases per run:

1. **naive** — the pre-serving baseline: a single thread calling
   ``recommend_sessions`` once *per session* (one synchronous
   SessionBatcher loop per call);
2. **coalesced** — ``concurrency`` closed-loop client threads issuing
   blocking ``recommend_one`` calls against a fresh server (cold
   cache), so micro-batches form from genuinely concurrent traffic;
3. **warm** — the same request set replayed against the now-populated
   explanation cache.

The emitted payload (``BENCH_serving.json``) carries throughput for
all three, the coalesced-vs-naive speedup, latency percentiles, the
batch-occupancy histogram, and the cache hit rate.

A fourth phase exercises the telemetry plane end to end: a fresh
server with the ``/metrics`` HTTP endpoint and (optionally) request
tracing enabled takes a short warm+cold pass, the endpoint is scraped
over real HTTP, the fleet snapshot is captured as JSON, and the
declarative serving SLOs (:func:`repro.telemetry.exporters.serving_slos`)
are evaluated against it — the CLI turns a violation into a non-zero
exit so CI gates on it.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from time import perf_counter
from typing import List, Optional, Sequence

import numpy as np

from repro.data.schema import Session
from repro.serving.server import RecommendationServer, naive_recommend_loop


def _closed_loop(server: RecommendationServer, sessions: Sequence[Session],
                 concurrency: int, k: int) -> float:
    """Drive every session through ``recommend_one`` from ``concurrency``
    client threads (round-robin shards); returns elapsed seconds."""
    shards: List[List[Session]] = [
        list(sessions[i::concurrency]) for i in range(concurrency)]
    errors: List[BaseException] = []

    def client(shard: List[Session]) -> None:
        try:
            for session in shard:
                server.recommend_one(session, k=k)
        except BaseException as exc:  # surfaced after join
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(shard,))
               for shard in shards if shard]
    start = perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed


def run_telemetry_phase(trainer, sessions: Sequence[Session], *,
                        concurrency: int = 32, k: int = 20,
                        trace_sample: float = 0.0,
                        window_interval_ms: float = 50.0,
                        slo_p99_ms: float = 1000.0,
                        slo_swap_max_ms: float = 5000.0,
                        slo_cache_hit_floor: float = 0.25,
                        slo_ring_fallback_ceiling: float = 0.5,
                        overrides: Optional[dict] = None) -> dict:
    """Drive a fresh server with the full telemetry plane enabled.

    Cold pass (misses) + warm replay (hits), a real HTTP scrape of the
    ``/metrics`` endpoint plus ``/metrics.json?window=`` and
    ``/healthz``, the merged fleet snapshot as JSON, and the canonical
    serving SLO gates evaluated **twice** — against the cumulative
    snapshot (historical gate) and against the rolling window covering
    the warm pass (burn-rate gate).  Returns the JSON-ready
    ``telemetry`` section of a bench payload.
    """
    from urllib.request import urlopen

    from repro.telemetry.exporters import evaluate_slos, serving_slos
    from repro.telemetry.trace import ROW_SPAN, spans_by_trace

    with trainer.serve(metrics_port=0, trace_sample=trace_sample,
                       window_interval_ms=window_interval_ms,
                       **(overrides or {})) as server:
        _closed_loop(server, sessions, concurrency, k)   # cold: misses
        warm_t0 = perf_counter()
        _closed_loop(server, sessions, concurrency, k)   # warm: hits
        warm_s = perf_counter() - warm_t0
        # Slice the window NOW, before the HTTP scrapes below — the
        # sampler keeps ticking while we scrape, and a trailing
        # ``warm_s``-deep window taken afterwards would cover the
        # scrape idle time instead of the warm traffic.
        win = server.window(seconds=warm_s)
        with urlopen(server.metrics_url, timeout=10) as resp:
            scrape = resp.read().decode("utf-8")
        base = server.metrics_url.rsplit("/metrics", 1)[0]
        with urlopen(f"{base}/healthz", timeout=10) as resp:
            healthz_ok = resp.read().decode("utf-8").strip() == "ok"
        with urlopen(f"{base}/metrics.json?window=all",
                     timeout=10) as resp:
            window_scrape = json.loads(resp.read().decode("utf-8"))
        snapshot = server.fleet_snapshot()
        spans = server.tracer.drain()
    slos = serving_slos(p99_ms=slo_p99_ms, swap_max_ms=slo_swap_max_ms,
                        cache_hit_floor=slo_cache_hit_floor,
                        ring_fallback_ceiling=slo_ring_fallback_ceiling)
    results = evaluate_slos(snapshot, slos)
    windowed = evaluate_slos(snapshot, slos, window=win)
    burns = [r.burn_rate for r in windowed if r.burn_rate is not None]
    return {
        "trace_sample": trace_sample,
        "prometheus_bytes": len(scrape),
        "prometheus_scraped": scrape.startswith("# "),
        "healthz_ok": healthz_ok,
        "window_endpoint_ok": bool(
            window_scrape.get("window_seconds") is not None
            or window_scrape.get("available") is False),
        "snapshot": snapshot.to_dict(),
        "spans_recorded": len(spans),
        "traces_recorded": len(spans_by_trace(spans)),
        "row_spans_recorded": sum(1 for s in spans
                                  if s.name == ROW_SPAN),
        "slo": [result.to_dict() for result in results],
        "slo_ok": all(result.ok for result in results),
        "window": {
            "available": win is not None,
            "seconds": win.seconds if win is not None else None,
            "slo": [result.to_dict() for result in windowed],
            "slo_ok": all(result.ok for result in windowed),
            "burn_max": max(burns) if burns else 0.0,
        },
    }


def run_serving_bench(trainer, sessions: Sequence[Session], *,
                      concurrency: int = 32, k: int = 20,
                      max_batch: Optional[int] = None,
                      max_wait_ms: Optional[float] = None,
                      workers: Optional[int] = None,
                      min_requests: int = 512,
                      naive_sessions: Optional[int] = None,
                      trace_sample: float = 0.0,
                      slo: Optional[dict] = None) -> dict:
    """One load-generator run; returns the JSON-ready payload.

    The request stream repeats the session list until it is at least
    ``min_requests`` long, so the coalesced phase measures steady-state
    batching rather than the client-thread ramp-up; the cold phase runs
    with the cache disabled so repeats still exercise the full walk.
    ``naive_sessions`` bounds the (slow) per-session baseline loop; its
    throughput extrapolates linearly since every call is independent.
    """
    sessions = [s for s in sessions if len(s.items) >= 2]
    if not sessions:
        raise ValueError("no usable sessions (need >= 2 items each)")
    rounds = max(1, -(-min_requests // len(sessions)))
    stream = list(sessions) * rounds
    overrides = {}
    if max_batch is not None:
        overrides["max_batch"] = max_batch
    if max_wait_ms is not None:
        overrides["max_wait_ms"] = max_wait_ms
    if workers is not None:
        overrides["workers"] = workers

    # Phase 1: naive one-session-per-call loop (the pre-serving path).
    # Best-of-2 on both timed phases: this benchmark compares two
    # absolute timings on a possibly noisy host, so each side gets
    # its best attempt (same policy as bench_micro_env_hotpath).
    naive_n = min(len(stream),
                  naive_sessions if naive_sessions else 128)
    naive_s = float("inf")
    for _ in range(2):
        start = perf_counter()
        naive_recommend_loop(trainer, stream[:naive_n], k=k)
        naive_s = min(naive_s, perf_counter() - start)
    naive_rps = naive_n / naive_s

    # Phase 2: cold coalesced pass — cache off, every request walks.
    with trainer.serve(cache_size=0, **overrides) as server:
        cold_s, cold = float("inf"), None
        for _ in range(2):
            elapsed = _closed_loop(server, stream, concurrency, k)
            if elapsed < cold_s:
                cold_s, cold = elapsed, server.stats()
            server.reset_stats()
        occupancy = cold.batch_occupancy
        scheduler_max_batch = server._scheduler.max_batch
        scheduler_wait_ms = server._scheduler.max_wait_s * 1e3
        n_workers = len(server._threads)
        pool_bytes = server.pool.nbytes
        worker_mode = server.worker_mode
        plane_bytes = (server.process_pool.plane_nbytes
                       if server.process_pool is not None else 0)

    # Phase 3: cache efficiency — populate once (misses), replay (hits).
    with trainer.serve(**overrides) as server:
        _closed_loop(server, sessions, concurrency, k)
        server.reset_stats()
        warm_s = _closed_loop(server, sessions, concurrency, k)
        warm = server.stats()
        cache = server.cache

    # Phase 4: telemetry plane — /metrics scrape + fleet snapshot +
    # SLO gates on a short dedicated pass (phases 1-3 keep their
    # historical shape for comparability).
    telemetry = run_telemetry_phase(
        trainer, sessions, concurrency=concurrency, k=k,
        trace_sample=trace_sample, overrides=overrides, **(slo or {}))

    return {
        "benchmark": "serving",
        "concurrency": concurrency,
        "k": k,
        "requests": len(stream),
        "distinct_sessions": len(sessions),
        "max_batch": scheduler_max_batch,
        "max_wait_ms": scheduler_wait_ms,
        "workers": n_workers,
        "worker_mode": worker_mode,
        "plane_nbytes": plane_bytes,
        "naive": {"requests": naive_n, "seconds": naive_s,
                  "throughput_rps": naive_rps},
        "coalesced": {"seconds": cold_s,
                      "throughput_rps": len(stream) / cold_s,
                      "latency_ms": {
                          "mean": cold.latency_ms_mean,
                          "p50": cold.latency_ms_p50,
                          "p95": cold.latency_ms_p95,
                          "p99": cold.latency_ms_p99},
                      "batch_occupancy": {
                          str(s): c for s, c
                          in sorted(occupancy.items())},
                      "mean_occupancy": cold.mean_occupancy,
                      "batches": cold.batches},
        "warm": {"seconds": warm_s,
                 "throughput_rps": len(sessions) / warm_s,
                 "latency_ms": {
                     "mean": warm.latency_ms_mean,
                     "p50": warm.latency_ms_p50,
                     "p95": warm.latency_ms_p95,
                     "p99": warm.latency_ms_p99}},
        "cache": {"hits": cache.hits, "misses": cache.misses,
                  "hit_rate": cache.hit_rate,
                  "entries": len(cache),
                  "evictions": cache.evictions,
                  "by_version": warm.to_dict()["cache_by_version"]},
        "speedup_vs_naive": (len(stream) / cold_s) / naive_rps,
        "workspace_pool_bytes": pool_bytes,
        "telemetry": telemetry,
    }


def check_determinism(trainer, sessions: Sequence[Session],
                      k: int = 20) -> bool:
    """Coalesced rankings must equal the synchronous batch rankings."""
    sessions = [s for s in sessions if len(s.items) >= 2]
    expected: List[np.ndarray] = []
    for rec in trainer.recommend_sessions(sessions, k=k):
        expected.extend(rec.ranked_items)
    with trainer.serve(cache_size=0) as server:
        results = server.recommend_many(sessions, k=k)
    got = [np.asarray(r.items, dtype=np.int64) for r in results]
    return all(np.array_equal(g, e) for g, e in zip(got, expected)) \
        and len(got) == len(expected)


def emit(payload: dict, out_path) -> Path:
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2))
    return out_path


def format_report(payload: dict) -> str:
    """Human-readable summary of one run."""
    cold = payload["coalesced"]
    warm = payload["warm"]
    lines = [
        f"serving bench @ concurrency {payload['concurrency']} "
        f"(k={payload['k']}, max_batch={payload['max_batch']}, "
        f"wait={payload['max_wait_ms']:.1f}ms, "
        f"workers={payload['workers']} "
        f"{payload.get('worker_mode', 'thread')})",
        f"  naive loop    : {payload['naive']['throughput_rps']:>8.1f} req/s",
        f"  coalesced     : {cold['throughput_rps']:>8.1f} req/s "
        f"({payload['speedup_vs_naive']:.2f}x naive)  "
        f"p50={cold['latency_ms']['p50']:.1f}ms "
        f"p95={cold['latency_ms']['p95']:.1f}ms "
        f"p99={cold['latency_ms']['p99']:.1f}ms",
        f"  warm (cached) : {warm['throughput_rps']:>8.1f} req/s  "
        f"hit rate {payload['cache']['hit_rate']:.1%}",
        f"  occupancy     : mean {cold['mean_occupancy']:.1f} "
        f"over {cold['batches']} batches",
    ]
    tel = payload.get("telemetry")
    if tel is not None:
        failed = [r["name"] for r in tel["slo"] if not r["ok"]]
        lines.append(
            f"  telemetry     : /metrics scrape {tel['prometheus_bytes']}B, "
            f"{tel['spans_recorded']} spans over "
            f"{tel['traces_recorded']} traces "
            f"(sample={tel['trace_sample']:.2f}), SLO "
            + ("PASS" if tel["slo_ok"] else f"FAIL {failed}"))
        win = tel.get("window")
        if win and win.get("available"):
            wfailed = [r["name"] for r in win["slo"] if not r["ok"]]
            lines.append(
                f"  window        : {win['seconds']:.2f}s, "
                f"burn max {win['burn_max']:.3g}, SLO "
                + ("PASS" if win["slo_ok"] else f"FAIL {wfailed}"))
    return "\n".join(lines)
