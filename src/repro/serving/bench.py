"""Closed-loop load generation against a :class:`RecommendationServer`.

Three measured phases per run:

1. **naive** — the pre-serving baseline: a single thread calling
   ``recommend_sessions`` once *per session* (one synchronous
   SessionBatcher loop per call);
2. **coalesced** — ``concurrency`` closed-loop client threads issuing
   blocking ``recommend_one`` calls against a fresh server (cold
   cache), so micro-batches form from genuinely concurrent traffic;
3. **warm** — the same request set replayed against the now-populated
   explanation cache.

The emitted payload (``BENCH_serving.json``) carries throughput for
all three, the coalesced-vs-naive speedup, latency percentiles, the
batch-occupancy histogram, and the cache hit rate.

A fourth phase exercises the telemetry plane end to end: a fresh
server with the ``/metrics`` HTTP endpoint and (optionally) request
tracing enabled takes a short warm+cold pass, the endpoint is scraped
over real HTTP, the fleet snapshot is captured as JSON, and the
declarative serving SLOs (:func:`repro.telemetry.exporters.serving_slos`)
are evaluated against it — the CLI turns a violation into a non-zero
exit so CI gates on it.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from time import perf_counter
from typing import List, Optional, Sequence

import numpy as np

from repro.data.schema import Session
from repro.serving.server import RecommendationServer, naive_recommend_loop


def _closed_loop(server: RecommendationServer, sessions: Sequence[Session],
                 concurrency: int, k: int) -> float:
    """Drive every session through ``recommend_one`` from ``concurrency``
    client threads (round-robin shards); returns elapsed seconds."""
    shards: List[List[Session]] = [
        list(sessions[i::concurrency]) for i in range(concurrency)]
    errors: List[BaseException] = []

    def client(shard: List[Session]) -> None:
        try:
            for session in shard:
                server.recommend_one(session, k=k)
        except BaseException as exc:  # surfaced after join
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(shard,))
               for shard in shards if shard]
    start = perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed


def run_telemetry_phase(trainer, sessions: Sequence[Session], *,
                        concurrency: int = 32, k: int = 20,
                        trace_sample: float = 0.0,
                        window_interval_ms: float = 50.0,
                        slo_p99_ms: float = 1000.0,
                        slo_swap_max_ms: float = 5000.0,
                        slo_cache_hit_floor: float = 0.25,
                        slo_ring_fallback_ceiling: float = 0.5,
                        overrides: Optional[dict] = None) -> dict:
    """Drive a fresh server with the full telemetry plane enabled.

    Cold pass (misses) + warm replay (hits), a real HTTP scrape of the
    ``/metrics`` endpoint plus ``/metrics.json?window=`` and
    ``/healthz``, the merged fleet snapshot as JSON, and the canonical
    serving SLO gates evaluated **twice** — against the cumulative
    snapshot (historical gate) and against the rolling window covering
    the warm pass (burn-rate gate).  Returns the JSON-ready
    ``telemetry`` section of a bench payload.
    """
    from urllib.request import urlopen

    from repro.telemetry.exporters import evaluate_slos, serving_slos
    from repro.telemetry.trace import ROW_SPAN, spans_by_trace

    with trainer.serve(metrics_port=0, trace_sample=trace_sample,
                       window_interval_ms=window_interval_ms,
                       **(overrides or {})) as server:
        _closed_loop(server, sessions, concurrency, k)   # cold: misses
        warm_t0 = perf_counter()
        _closed_loop(server, sessions, concurrency, k)   # warm: hits
        warm_s = perf_counter() - warm_t0
        # Slice the window NOW, before the HTTP scrapes below — the
        # sampler keeps ticking while we scrape, and a trailing
        # ``warm_s``-deep window taken afterwards would cover the
        # scrape idle time instead of the warm traffic.
        win = server.window(seconds=warm_s)
        with urlopen(server.metrics_url, timeout=10) as resp:
            scrape = resp.read().decode("utf-8")
        base = server.metrics_url.rsplit("/metrics", 1)[0]
        with urlopen(f"{base}/healthz", timeout=10) as resp:
            healthz_ok = resp.read().decode("utf-8").strip() == "ok"
        with urlopen(f"{base}/metrics.json?window=all",
                     timeout=10) as resp:
            window_scrape = json.loads(resp.read().decode("utf-8"))
        snapshot = server.fleet_snapshot()
        spans = server.tracer.drain()
    slos = serving_slos(p99_ms=slo_p99_ms, swap_max_ms=slo_swap_max_ms,
                        cache_hit_floor=slo_cache_hit_floor,
                        ring_fallback_ceiling=slo_ring_fallback_ceiling)
    results = evaluate_slos(snapshot, slos)
    windowed = evaluate_slos(snapshot, slos, window=win)
    burns = [r.burn_rate for r in windowed if r.burn_rate is not None]
    return {
        "trace_sample": trace_sample,
        "prometheus_bytes": len(scrape),
        "prometheus_scraped": scrape.startswith("# "),
        "healthz_ok": healthz_ok,
        "window_endpoint_ok": bool(
            window_scrape.get("window_seconds") is not None
            or window_scrape.get("available") is False),
        "snapshot": snapshot.to_dict(),
        "spans_recorded": len(spans),
        "traces_recorded": len(spans_by_trace(spans)),
        "row_spans_recorded": sum(1 for s in spans
                                  if s.name == ROW_SPAN),
        "slo": [result.to_dict() for result in results],
        "slo_ok": all(result.ok for result in results),
        "window": {
            "available": win is not None,
            "seconds": win.seconds if win is not None else None,
            "slo": [result.to_dict() for result in windowed],
            "slo_ok": all(result.ok for result in windowed),
            "burn_max": max(burns) if burns else 0.0,
        },
    }


def run_serving_bench(trainer, sessions: Sequence[Session], *,
                      concurrency: int = 32, k: int = 20,
                      max_batch: Optional[int] = None,
                      max_wait_ms: Optional[float] = None,
                      workers: Optional[int] = None,
                      min_requests: int = 512,
                      naive_sessions: Optional[int] = None,
                      trace_sample: float = 0.0,
                      slo: Optional[dict] = None,
                      hot_replay: Optional[dict] = None) -> dict:
    """One load-generator run; returns the JSON-ready payload.

    The request stream repeats the session list until it is at least
    ``min_requests`` long, so the coalesced phase measures steady-state
    batching rather than the client-thread ramp-up; the cold phase runs
    with the cache disabled so repeats still exercise the full walk.
    ``naive_sessions`` bounds the (slow) per-session baseline loop; its
    throughput extrapolates linearly since every call is independent.
    """
    sessions = [s for s in sessions if len(s.items) >= 2]
    if not sessions:
        raise ValueError("no usable sessions (need >= 2 items each)")
    rounds = max(1, -(-min_requests // len(sessions)))
    stream = list(sessions) * rounds
    overrides = {}
    if max_batch is not None:
        overrides["max_batch"] = max_batch
    if max_wait_ms is not None:
        overrides["max_wait_ms"] = max_wait_ms
    if workers is not None:
        overrides["workers"] = workers

    # Phase 1: naive one-session-per-call loop (the pre-serving path).
    # Best-of-2 on both timed phases: this benchmark compares two
    # absolute timings on a possibly noisy host, so each side gets
    # its best attempt (same policy as bench_micro_env_hotpath).
    naive_n = min(len(stream),
                  naive_sessions if naive_sessions else 128)
    naive_s = float("inf")
    for _ in range(2):
        start = perf_counter()
        naive_recommend_loop(trainer, stream[:naive_n], k=k)
        naive_s = min(naive_s, perf_counter() - start)
    naive_rps = naive_n / naive_s

    # Phase 2: cold coalesced pass — cache off, every request walks.
    with trainer.serve(cache_size=0, **overrides) as server:
        cold_s, cold = float("inf"), None
        for _ in range(2):
            elapsed = _closed_loop(server, stream, concurrency, k)
            if elapsed < cold_s:
                cold_s, cold = elapsed, server.stats()
            server.reset_stats()
        occupancy = cold.batch_occupancy
        scheduler_max_batch = server._scheduler.max_batch
        scheduler_wait_ms = server._scheduler.max_wait_s * 1e3
        n_workers = len(server._threads)
        pool_bytes = server.pool.nbytes
        worker_mode = server.worker_mode
        plane_bytes = (server.process_pool.plane_nbytes
                       if server.process_pool is not None else 0)

    # Phase 3: cache efficiency — populate once (misses), replay (hits).
    with trainer.serve(**overrides) as server:
        _closed_loop(server, sessions, concurrency, k)
        server.reset_stats()
        warm_s = _closed_loop(server, sessions, concurrency, k)
        warm = server.stats()
        cache = server.cache

    # Phase 4: telemetry plane — /metrics scrape + fleet snapshot +
    # SLO gates on a short dedicated pass (phases 1-3 keep their
    # historical shape for comparability).
    telemetry = run_telemetry_phase(
        trainer, sessions, concurrency=concurrency, k=k,
        trace_sample=trace_sample, overrides=overrides, **(slo or {}))

    # Phase 5 (opt-in): Zipf hot-session replay gating the shared-
    # computation layer (dedup + walk memo) — see run_hot_replay.
    replay = None
    if hot_replay is not None:
        replay = run_hot_replay(trainer, sessions,
                                concurrency=concurrency,
                                overrides=overrides, **hot_replay)

    return {
        "benchmark": "serving",
        "concurrency": concurrency,
        "k": k,
        "requests": len(stream),
        "distinct_sessions": len(sessions),
        "max_batch": scheduler_max_batch,
        "max_wait_ms": scheduler_wait_ms,
        "workers": n_workers,
        "worker_mode": worker_mode,
        "plane_nbytes": plane_bytes,
        "naive": {"requests": naive_n, "seconds": naive_s,
                  "throughput_rps": naive_rps},
        "coalesced": {"seconds": cold_s,
                      "throughput_rps": len(stream) / cold_s,
                      "latency_ms": {
                          "mean": cold.latency_ms_mean,
                          "p50": cold.latency_ms_p50,
                          "p95": cold.latency_ms_p95,
                          "p99": cold.latency_ms_p99},
                      "batch_occupancy": {
                          str(s): c for s, c
                          in sorted(occupancy.items())},
                      "mean_occupancy": cold.mean_occupancy,
                      "batches": cold.batches},
        "warm": {"seconds": warm_s,
                 "throughput_rps": len(sessions) / warm_s,
                 "latency_ms": {
                     "mean": warm.latency_ms_mean,
                     "p50": warm.latency_ms_p50,
                     "p95": warm.latency_ms_p95,
                     "p99": warm.latency_ms_p99}},
        "cache": {"hits": cache.hits, "misses": cache.misses,
                  "hit_rate": cache.hit_rate,
                  "entries": len(cache),
                  "evictions": cache.evictions,
                  "by_version": warm.to_dict()["cache_by_version"]},
        "speedup_vs_naive": (len(stream) / cold_s) / naive_rps,
        "workspace_pool_bytes": pool_bytes,
        "telemetry": telemetry,
        **({"hot_replay": replay} if replay is not None else {}),
    }


def _replay(server: RecommendationServer,
            requests: Sequence[tuple], concurrency: int):
    """Closed-loop drive of an explicit ``(session, k)`` request list;
    returns ``(elapsed_seconds, results_in_request_order)``."""
    results: List[Optional[object]] = [None] * len(requests)
    shards = [list(range(i, len(requests), concurrency))
              for i in range(concurrency)]
    errors: List[BaseException] = []

    def client(indices: List[int]) -> None:
        try:
            for i in indices:
                session, k = requests[i]
                results[i] = server.recommend_one(session, k=k)
        except BaseException as exc:  # surfaced after join
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(shard,))
               for shard in shards if shard]
    start = perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed, results


def _replay_waves(server: RecommendationServer,
                  requests: Sequence[tuple], wave: int):
    """Deterministic wave drive: submit ``wave`` requests, await them
    all, then the next wave.  Unlike the closed-loop :func:`_replay`,
    every run sees the **identical sequence of flush compositions** (a
    wave's cache misses coalesce into one flush) — which is what makes
    float-bit comparisons across two servers meaningful, because
    per-row numeric outputs depend on the flush's padded width."""
    results: List[Optional[object]] = [None] * len(requests)
    start = perf_counter()
    for base in range(0, len(requests), wave):
        futures = [(i, server.submit(requests[i][0], k=requests[i][1]))
                   for i in range(base, min(base + wave, len(requests)))]
        for i, future in futures:
            results[i] = future.result()
    return perf_counter() - start, results


def run_hot_replay(trainer, sessions: Sequence[Session], *,
                   concurrency: int = 32, requests: int = 512,
                   zipf_s: float = 1.0, ks: Sequence[int] = (5, 10, 20),
                   seed: int = 2024,
                   slo_p99_ms: float = 1000.0,
                   slo_memo_hit_floor: float = 0.25,
                   overrides: Optional[dict] = None) -> dict:
    """Zipf-skewed hot-session replay: shared computation on vs off.

    A seeded Zipf(``zipf_s``) draw over the distinct sessions (rank 1 =
    hottest) builds one fixed request stream whose ``k`` cycles through
    ``ks`` per request — so repeat suffixes keep changing k, the case
    only the walk memo (not any exact-repeat cache) can share.  The
    identical stream is then driven through two servers: **baseline**
    with ``dedup=False, walk_memo_size=0`` and **shared** with the
    defaults — both with the explanation cache *off*, so every request
    reaches the scheduler and the measured speedup isolates the
    walk-sharing layer rather than re-measuring ISSUE-4 caching.
    Best-of-2 with a fresh server per attempt keeps cold-start cost
    symmetric.  Both runs use the deterministic :func:`_replay_waves`
    driver (``concurrency`` = wave size), so the two servers see the
    identical sequence of flush compositions.  Both runs execute in
    **thread mode** whatever the outer bench pinned: the layer under
    test is transport-agnostic and its process-mode differentials are
    covered bitwise by the tier-1 suite, while process-mode marshal
    overhead belongs to the bench's main phases, not this ratio.

    Equality gate (``bit_identical``): rankings and rendered
    explanations must match the baseline **exactly**, and scores to
    within last-ulp BLAS reassociation (rtol 1e-6).  Collapsing
    duplicate rows or serving a memo hit changes the *walk batch's row
    composition*, and per-row float bits are only reproducible for an
    identical batch composition (degree-bucketed policy forwards batch
    rows together, so BLAS block reduction order couples rows) — the
    same last-ulp tolerance the coalescing layer has always documented
    for batch-shape changes, with rankings and paths invariant.  Score
    bits *are* exactly reproduced whenever composition is preserved —
    across transports, and for sequential streams — which is what the
    tier-1 differential suite pins; ``scores_bit_identical`` reports
    how often that held here, honestly, without gating on it.

    Emits dedup/memo hit counters, walked-row counts from the fleet
    plane, the speedup, the equality breakdown, and the declarative
    SLO verdicts (memo-hit floor + p99 ceiling) evaluated on the
    shared run's fleet snapshot.
    """
    from repro.telemetry.exporters import evaluate_slos, serving_slos

    sessions = [s for s in sessions if len(s.items) >= 2]
    if not sessions:
        raise ValueError("no usable sessions (need >= 2 items each)")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, len(sessions) + 1, dtype=np.float64)
    weights = ranks ** -float(zipf_s)
    weights /= weights.sum()
    picks = rng.choice(len(sessions), size=int(requests), p=weights)
    ks = tuple(int(k) for k in ks)
    stream = [(sessions[int(p)], ks[i % len(ks)])
              for i, p in enumerate(picks)]

    def drive(server_overrides: dict):
        best = None
        for _ in range(2):
            with trainer.serve(**server_overrides) as server:
                elapsed, results = _replay_waves(server, stream,
                                                 concurrency)
                stats = server.stats()
                snap = (server.fleet_snapshot()
                        if server.metrics_registry is not None else None)
            if best is None or elapsed < best[0]:
                best = (elapsed, results, stats, snap)
        return best

    # Short flush deadline (identical on both sides): the wave driver
    # pays one deadline wait per wave, and at the bench's default 2ms
    # that fixed cost drowns the walk-time difference being measured.
    # Submitting a wave takes microseconds, so 0.5ms still coalesces
    # every wave into one deterministic flush.
    #
    # The replay always runs in thread mode regardless of the outer
    # bench's pinned worker mode: the shared-computation layer is
    # transport-agnostic (the dedup trailer / per-worker memo
    # differentials are pinned bitwise by tests/test_shared_compute.py),
    # and in process mode the fixed per-flush ring marshal + render
    # cost — already measured by the bench's main phases — dilutes the
    # wall ratio of the one layer this stage isolates.
    base_over = {k: v for k, v in (overrides or {}).items()
                 if k not in ("worker_mode", "transport", "workers")}
    base_over.update(cache_size=0, dedup=False, walk_memo_size=0,
                     max_wait_ms=0.5, worker_mode="thread")
    base_s, base_results, base_stats, base_snap = drive(base_over)
    shared_over = {k: v for k, v in (overrides or {}).items()
                   if k not in ("worker_mode", "transport", "workers")}
    shared_over.update(cache_size=0, max_wait_ms=0.5,
                       worker_mode="thread")
    shared_s, shared_results, shared_stats, shared_snap = drive(
        shared_over)

    rankings_ok = len(base_results) == len(shared_results) and all(
        b.items == s.items
        for b, s in zip(base_results, shared_results))
    explanations_ok = rankings_ok and all(
        b.explanations == s.explanations
        for b, s in zip(base_results, shared_results))
    scores_bitwise = rankings_ok and all(
        b.scores == s.scores
        for b, s in zip(base_results, shared_results))
    score_rel_err = 0.0
    scores_close = rankings_ok
    if rankings_ok:
        for b, s in zip(base_results, shared_results):
            bs = np.asarray(b.scores)
            ss = np.asarray(s.scores)
            denom = np.maximum(np.abs(bs), 1e-300)
            err = float(np.max(np.abs(bs - ss) / denom)) if bs.size else 0.0
            score_rel_err = max(score_rel_err, err)
        scores_close = score_rel_err <= 1e-6
    identical = rankings_ok and explanations_ok and scores_close

    def counter(snap, name: str) -> int:
        return int(snap.counter(name)) if snap is not None else 0

    memo_hits = counter(shared_snap, "walk_memo_hits_total")
    memo_misses = counter(shared_snap, "walk_memo_misses_total")
    saved = 0.0
    if shared_snap is not None:
        saved = float(sum((shared_snap.to_dict().get("gauges", {})
                           .get("walk_seconds_saved_total") or {})
                          .values()))

    slos = serving_slos(p99_ms=slo_p99_ms,
                        memo_hit_floor=slo_memo_hit_floor)
    slo_results = (evaluate_slos(shared_snap, slos)
                   if shared_snap is not None else [])

    def phase(elapsed: float, stats) -> dict:
        return {"seconds": elapsed,
                "throughput_rps": len(stream) / elapsed,
                "latency_ms": {"mean": stats.latency_ms_mean,
                               "p50": stats.latency_ms_p50,
                               "p95": stats.latency_ms_p95,
                               "p99": stats.latency_ms_p99}}

    return {
        "requests": len(stream),
        "distinct_sessions": len(sessions),
        "zipf_s": float(zipf_s),
        "ks": list(ks),
        "concurrency": concurrency,
        "worker_mode": "thread",
        "baseline": {**phase(base_s, base_stats),
                     "walked_rows": counter(base_snap,
                                            "exec_rows_total")},
        "shared": {**phase(shared_s, shared_stats),
                   "walked_rows": counter(shared_snap,
                                          "exec_rows_total"),
                   "dedup_rows": counter(shared_snap,
                                         "dedup_rows_total"),
                   "memo": {"hits": memo_hits,
                            "misses": memo_misses,
                            "hit_rate": (memo_hits
                                         / (memo_hits + memo_misses)
                                         if memo_hits + memo_misses
                                         else 0.0),
                            "evictions": counter(
                                shared_snap,
                                "walk_memo_evictions_total"),
                            "seconds_saved": saved}},
        "speedup": base_s / shared_s if shared_s else 0.0,
        "bit_identical": identical,
        "rankings_identical": rankings_ok,
        "explanations_identical": explanations_ok,
        "scores_bit_identical": scores_bitwise,
        "scores_max_rel_err": score_rel_err,
        "slo": [result.to_dict() for result in slo_results],
        "slo_ok": all(result.ok for result in slo_results),
    }


def check_determinism(trainer, sessions: Sequence[Session],
                      k: int = 20) -> bool:
    """Coalesced rankings must equal the synchronous batch rankings."""
    sessions = [s for s in sessions if len(s.items) >= 2]
    expected: List[np.ndarray] = []
    for rec in trainer.recommend_sessions(sessions, k=k):
        expected.extend(rec.ranked_items)
    with trainer.serve(cache_size=0) as server:
        results = server.recommend_many(sessions, k=k)
    got = [np.asarray(r.items, dtype=np.int64) for r in results]
    return all(np.array_equal(g, e) for g, e in zip(got, expected)) \
        and len(got) == len(expected)


def emit(payload: dict, out_path) -> Path:
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2))
    return out_path


def format_report(payload: dict) -> str:
    """Human-readable summary of one run."""
    cold = payload["coalesced"]
    warm = payload["warm"]
    lines = [
        f"serving bench @ concurrency {payload['concurrency']} "
        f"(k={payload['k']}, max_batch={payload['max_batch']}, "
        f"wait={payload['max_wait_ms']:.1f}ms, "
        f"workers={payload['workers']} "
        f"{payload.get('worker_mode', 'thread')})",
        f"  naive loop    : {payload['naive']['throughput_rps']:>8.1f} req/s",
        f"  coalesced     : {cold['throughput_rps']:>8.1f} req/s "
        f"({payload['speedup_vs_naive']:.2f}x naive)  "
        f"p50={cold['latency_ms']['p50']:.1f}ms "
        f"p95={cold['latency_ms']['p95']:.1f}ms "
        f"p99={cold['latency_ms']['p99']:.1f}ms",
        f"  warm (cached) : {warm['throughput_rps']:>8.1f} req/s  "
        f"hit rate {payload['cache']['hit_rate']:.1%}",
        f"  occupancy     : mean {cold['mean_occupancy']:.1f} "
        f"over {cold['batches']} batches",
    ]
    tel = payload.get("telemetry")
    if tel is not None:
        failed = [r["name"] for r in tel["slo"] if not r["ok"]]
        lines.append(
            f"  telemetry     : /metrics scrape {tel['prometheus_bytes']}B, "
            f"{tel['spans_recorded']} spans over "
            f"{tel['traces_recorded']} traces "
            f"(sample={tel['trace_sample']:.2f}), SLO "
            + ("PASS" if tel["slo_ok"] else f"FAIL {failed}"))
        win = tel.get("window")
        if win and win.get("available"):
            wfailed = [r["name"] for r in win["slo"] if not r["ok"]]
            lines.append(
                f"  window        : {win['seconds']:.2f}s, "
                f"burn max {win['burn_max']:.3g}, SLO "
                + ("PASS" if win["slo_ok"] else f"FAIL {wfailed}"))
    replay = payload.get("hot_replay")
    if replay is not None:
        memo = replay["shared"]["memo"]
        rfailed = [r["name"] for r in replay["slo"] if not r["ok"]]
        lines.append(
            f"  hot replay    : {replay['speedup']:.2f}x over dedup-off "
            f"(zipf s={replay['zipf_s']:g}, "
            f"{replay['requests']} reqs, "
            f"{replay.get('worker_mode', 'thread')} mode), memo hit "
            f"{memo['hit_rate']:.1%}, "
            f"{replay['shared']['dedup_rows']} deduped, walks "
            f"{replay['shared']['walked_rows']}"
            f"/{replay['baseline']['walked_rows']}, "
            + ("identical" if replay["bit_identical"]
               else "MISMATCH")
            + (" (scores bitwise)" if replay["scores_bit_identical"]
               else f" (score ulp err {replay['scores_max_rel_err']:.1e})")
            + ", SLO "
            + ("PASS" if replay["slo_ok"] else f"FAIL {rfailed}"))
    return "\n".join(lines)
