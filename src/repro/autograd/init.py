"""Seeded parameter initializers.

All initializers take an explicit :class:`numpy.random.Generator` so that
every experiment in the benchmark harness is reproducible run-to-run.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.autograd.tensor import DEFAULT_DTYPE


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator,
                   gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(DEFAULT_DTYPE)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator,
                  gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return (rng.standard_normal(shape) * std).astype(DEFAULT_DTYPE)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform initialization (for ReLU fan-in)."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(DEFAULT_DTYPE)


def normal(shape: Tuple[int, ...], rng: np.random.Generator,
           std: float = 0.02) -> np.ndarray:
    """Plain gaussian initialization (BERT-style)."""
    return (rng.standard_normal(shape) * std).astype(DEFAULT_DTYPE)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=DEFAULT_DTYPE)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=DEFAULT_DTYPE)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
