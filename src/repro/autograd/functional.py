"""Fused/stable functional operations built on the autograd tape.

Softmax-family operations get dedicated backward rules (rather than being
composed from primitives) for numerical stability and speed: they are on
the hot path of both the SR encoders and the REKS policy network.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd.tensor import (  # noqa: F401 (re-export)
    Tensor,
    concat,
    is_grad_enabled,
    stack,
)


def coerce_indices(indices: np.ndarray, detach: bool) -> np.ndarray:
    """Index array ready for a table gather, preserving integer width.

    Integer inputs keep their dtype (int32 lookups stay int32 — no
    per-lookup upcast copy); anything else is cast to int64.  With
    ``detach=True`` the result never aliases the input: callers that
    record a backward closure retaining the indices (the scatter-add
    backward of an embedding gather) must not hold a view into a
    recycled :class:`~repro.core.environment.RolloutWorkspace` buffer.
    """
    indices = np.asarray(indices)
    if indices.dtype.kind not in "iu":
        return indices.astype(np.int64)
    if detach:
        return indices.copy()
    return indices


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    value = exp / exp.sum(axis=axis, keepdims=True)
    out = x._make_child(value, (x,), "softmax")
    if out.requires_grad:

        def _backward() -> None:
            g = out.grad
            s = out.data
            dot = (g * s).sum(axis=axis, keepdims=True)
            x._accumulate(s * (g - dot))

        out._backward = _backward
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    value = shifted - log_sum
    out = x._make_child(value, (x,), "log_softmax")
    if out.requires_grad:

        def _backward() -> None:
            g = out.grad
            soft = np.exp(out.data)
            x._accumulate(g - soft * g.sum(axis=axis, keepdims=True))

        out._backward = _backward
    return out


def cross_entropy(logits: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Categorical cross-entropy from raw logits and integer targets.

    Parameters
    ----------
    logits:
        ``(batch, num_classes)`` scores.
    targets:
        ``(batch,)`` integer class indices.
    """
    targets = np.asarray(targets, dtype=np.int64)
    logp = log_softmax(logits, axis=-1)
    batch = np.arange(targets.shape[0])
    picked = logp[batch, targets]
    loss = -picked
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    return loss


def binary_cross_entropy(probs: Tensor, targets: np.ndarray, eps: float = 1e-7,
                         reduction: str = "sum") -> Tensor:
    """Binary cross-entropy on probabilities (Eq. 14 of the paper).

    ``Lce = -sum_j [ y_j log(p_j) + (1 - y_j) log(1 - p_j) ]``

    Probabilities are clipped into ``[eps, 1-eps]`` inside the graph via
    ``clip`` so gradients remain finite at the boundaries.
    """
    targets = np.asarray(targets, dtype=probs.dtype)
    clipped = clip(probs, eps, 1.0 - eps)
    term = clipped.log() * targets + (1.0 - clipped).log() * (1.0 - targets)
    loss = -term
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    return loss


def clip(x: Tensor, low: float, high: float) -> Tensor:
    """Clamp values to ``[low, high]``; gradient is zero outside."""
    value = np.clip(x.data, low, high)
    out = x._make_child(value, (x,), "clip")
    if out.requires_grad:
        mask = (x.data >= low) & (x.data <= high)

        def _backward() -> None:
            x._accumulate(out.grad * mask)

        out._backward = _backward
    return out


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: scales kept activations by ``1/(1-p)``."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(x.dtype) / (1.0 - p)
    return x * Tensor(mask, dtype=x.dtype)


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation)."""
    c = np.sqrt(2.0 / np.pi)
    inner = (x + x.pow(3.0) * 0.044715) * c
    return x * (inner.tanh() + 1.0) * 0.5


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def relu(x: Tensor) -> Tensor:
    return x.relu()


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows from an embedding matrix (scatter-add backward).

    Integer index arrays keep their dtype (int32 stays int32); the
    copy detaching the indices from any recycled workspace buffer is
    only taken when a backward closure will retain them.
    """
    return weight[coerce_indices(
        indices, detach=weight.requires_grad and is_grad_enabled())]


def scatter_add(src: Tensor, index, shape) -> Tensor:
    """Dense tensor of ``shape`` with ``src`` summed into ``index`` cells.

    ``index`` is anything ``np.add.at`` accepts (typically a tuple of
    integer arrays, one per target axis).  Backward gathers the output
    gradient back at ``index``.  Used to aggregate per-path
    probabilities into per-(session, item) scores ``ŷ`` (Eq. 14).
    """
    data = np.zeros(shape, dtype=src.dtype)
    np.add.at(data, index, src.data)
    out = src._make_child(data, (src,), "scatter_add")
    if out.requires_grad:

        def _backward() -> None:
            src._accumulate(out.grad[index])

        out._backward = _backward
    return out
