"""First-order optimizers over autograd parameters."""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.autograd.tensor import Tensor


class Optimizer:
    """Base class: holds parameters and clears their gradients."""

    def __init__(self, params: Iterable[Tensor]) -> None:
        self.params: List[Tensor] = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Iterable[Tensor], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel = self._velocity.get(id(p))
                if vel is None:
                    vel = np.zeros_like(p.data)
                vel = self.momentum * vel + grad
                self._velocity[id(p)] = vel
                grad = vel
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction and weight decay."""

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m = self._m.get(id(p))
            v = self._v.get(id(p))
            if m is None:
                m = np.zeros_like(p.data)
                v = np.zeros_like(p.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            self._m[id(p)] = m
            self._v[id(p)] = v
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Clip total gradient 2-norm in place; returns the pre-clip norm."""
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total
