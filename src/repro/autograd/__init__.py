"""Minimal numpy-based reverse-mode automatic differentiation.

This subpackage is the numerical substrate for the whole reproduction:
every session-based recommendation model and the REKS policy network are
built from :class:`~repro.autograd.tensor.Tensor` operations so that the
entire system trains end-to-end on CPU without any deep-learning
framework.
"""

from repro.autograd.tensor import Tensor, no_grad, is_grad_enabled, tensor
from repro.autograd import functional
from repro.autograd import init
from repro.autograd.optim import SGD, Adam, Optimizer, clip_grad_norm

__all__ = [
    "Tensor",
    "tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "init",
    "SGD",
    "Adam",
    "Optimizer",
    "clip_grad_norm",
]
