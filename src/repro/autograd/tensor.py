"""Reverse-mode automatic differentiation on numpy arrays.

The design follows the classic tape-free autograd pattern: every
:class:`Tensor` remembers its parent tensors and a closure that
accumulates gradients into them.  Calling :meth:`Tensor.backward`
performs a topological sort of the graph and runs the closures in
reverse order.

Broadcasting is supported for the elementwise operations; gradients
flowing into a broadcast operand are summed back to the operand's
original shape by :func:`_unbroadcast`.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

DEFAULT_DTYPE = np.float32


class _GradState(threading.local):
    """Per-thread grad-mode flag.

    Thread-local so concurrent ``no_grad`` blocks (e.g. several
    serving workers plus the submitting thread) cannot restore each
    other's flag mid-walk — each thread owns its own, defaulting to
    enabled.  Module train/eval mode is *not* per-thread, so this does
    not make training and serving the same model concurrently safe.
    """

    enabled = True


_GRAD_STATE = _GradState()


def is_grad_enabled() -> bool:
    """Return whether gradient tracking is enabled in this thread."""
    return _GRAD_STATE.enabled


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (this thread).

    Used for evaluation/inference so that no backward closures are
    recorded and intermediate buffers can be freed eagerly.
    """
    previous = _GRAD_STATE.enabled
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]


class Tensor:
    """A numpy array with an optional autograd tape entry.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``dtype`` (default float32).
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "_op")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _prev: Tuple["Tensor", ...] = (),
        _op: str = "",
        dtype: Optional[np.dtype] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        grad_enabled = _GRAD_STATE.enabled
        self.data = np.asarray(data, dtype=dtype or DEFAULT_DTYPE)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and grad_enabled
        self._backward: Optional[Callable[[], None]] = None
        self._prev = _prev if grad_enabled else ()
        self._op = _op

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag}, op={self._op or 'leaf'})"

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new leaf tensor sharing data but outside the graph."""
        return Tensor(self.data, requires_grad=False)

    def ensure_writable(self) -> np.ndarray:
        """Make :attr:`data` privately writable, copying on first write.

        Tensors may wrap *foreign* read-only buffers — OS shared-memory
        views exported by :mod:`repro.runtime` or frozen tables shared
        between agent clones.  Reads stay zero-copy; the first caller
        that needs to mutate the payload goes through here, which
        replaces the view with a private writable copy (copy-on-write).
        Returns the (now writable) array.
        """
        if not self.data.flags.writeable:
            self.data = self.data.copy()
        return self.data

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph machinery
    # ------------------------------------------------------------------
    def _make_child(self, data: np.ndarray, parents: Sequence["Tensor"], op: str) -> "Tensor":
        requires = _GRAD_STATE.enabled and any(p.requires_grad for p in parents)
        out = Tensor.__new__(Tensor)
        out.data = data
        out.grad = None
        out.requires_grad = requires
        out._backward = None
        out._prev = tuple(parents) if requires else ()
        out._op = op
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without a gradient requires a scalar output")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))
        self._accumulate(np.asarray(grad, dtype=self.data.dtype))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: ArrayLike) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other, dtype=self.data.dtype)

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out = self._make_child(self.data + other.data, (self, other), "add")
        if out.requires_grad:

            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(out.grad, other.shape))

            out._backward = _backward
        return out

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out = self._make_child(self.data * other.data, (self, other), "mul")
        if out.requires_grad:

            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(out.grad * self.data, other.shape))

            out._backward = _backward
        return out

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (self._coerce(other) * -1.0)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) + (self * -1.0)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        return self * other.pow(-1.0)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) * self.pow(-1.0)

    def __neg__(self) -> "Tensor":
        return self * -1.0

    __radd__ = __add__
    __rmul__ = __mul__

    def pow(self, exponent: float) -> "Tensor":
        out = self._make_child(np.power(self.data, exponent), (self,), "pow")
        if out.requires_grad:

            def _backward() -> None:
                self._accumulate(exponent * np.power(self.data, exponent - 1.0) * out.grad)

            out._backward = _backward
        return out

    __pow__ = pow

    # ------------------------------------------------------------------
    # Nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out = self._make_child(np.exp(self.data), (self,), "exp")
        if out.requires_grad:

            def _backward() -> None:
                self._accumulate(out.data * out.grad)

            out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out = self._make_child(np.log(self.data), (self,), "log")
        if out.requires_grad:

            def _backward() -> None:
                self._accumulate(out.grad / self.data)

            out._backward = _backward
        return out

    def sqrt(self) -> "Tensor":
        return self.pow(0.5)

    def tanh(self) -> "Tensor":
        out = self._make_child(np.tanh(self.data), (self,), "tanh")
        if out.requires_grad:

            def _backward() -> None:
                self._accumulate((1.0 - out.data * out.data) * out.grad)

            out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-self.data))
        out = self._make_child(value, (self,), "sigmoid")
        if out.requires_grad:

            def _backward() -> None:
                self._accumulate(out.data * (1.0 - out.data) * out.grad)

            out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        out = self._make_child(np.maximum(self.data, 0.0), (self,), "relu")
        if out.requires_grad:

            def _backward() -> None:
                self._accumulate((self.data > 0.0) * out.grad)

            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: ArrayLike) -> "Tensor":
        """Matrix product supporting 2-D and batched (>=3-D) operands."""
        other = self._coerce(other)
        out = self._make_child(np.matmul(self.data, other.data), (self, other), "matmul")
        if out.requires_grad:

            def _backward() -> None:
                grad = out.grad
                if self.requires_grad:
                    if other.data.ndim == 1:
                        g = np.multiply.outer(grad, other.data) if grad.ndim else grad * other.data
                        self._accumulate(_unbroadcast(np.asarray(g), self.shape))
                    else:
                        g = np.matmul(grad, np.swapaxes(other.data, -1, -2))
                        self._accumulate(_unbroadcast(g, self.shape))
                if other.requires_grad:
                    if self.data.ndim == 1:
                        g = np.multiply.outer(self.data, grad) if grad.ndim else self.data * grad
                        other._accumulate(_unbroadcast(np.asarray(g), other.shape))
                    else:
                        g = np.matmul(np.swapaxes(self.data, -1, -2), grad)
                        other._accumulate(_unbroadcast(g, other.shape))

            out._backward = _backward
        return out

    __matmul__ = matmul

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self._make_child(self.data.sum(axis=axis, keepdims=keepdims), (self,), "sum")
        if out.requires_grad:

            def _backward() -> None:
                grad = out.grad
                if axis is not None and not keepdims:
                    grad = np.expand_dims(grad, axis=axis)
                self._accumulate(np.broadcast_to(grad, self.shape).copy())

            out._backward = _backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        value = self.data.max(axis=axis, keepdims=keepdims)
        out = self._make_child(value, (self,), "max")
        if out.requires_grad:

            def _backward() -> None:
                grad = out.grad
                val = out.data
                if axis is not None and not keepdims:
                    grad = np.expand_dims(grad, axis=axis)
                    val = np.expand_dims(val, axis=axis)
                mask = (self.data == val).astype(self.data.dtype)
                # Split the gradient evenly among ties so the result is a
                # valid subgradient regardless of duplicates.
                counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
                self._accumulate(mask * grad / counts)

            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self._make_child(self.data.reshape(shape), (self,), "reshape")
        if out.requires_grad:

            def _backward() -> None:
                self._accumulate(out.grad.reshape(self.shape))

            out._backward = _backward
        return out

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = None
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out = self._make_child(self.data.transpose(axes), (self,), "transpose")
        if out.requires_grad:
            inverse = None if axes is None else tuple(np.argsort(axes))

            def _backward() -> None:
                self._accumulate(out.grad.transpose(inverse))

            out._backward = _backward
        return out

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def __getitem__(self, index) -> "Tensor":
        out = self._make_child(self.data[index], (self,), "getitem")
        if out.requires_grad:

            def _backward() -> None:
                grad = np.zeros_like(self.data)
                np.add.at(grad, index, out.grad)
                self._accumulate(grad)

            out._backward = _backward
        return out

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Return a tensor equal to self but with ``value`` where ``mask``."""
        mask = np.asarray(mask, dtype=bool)
        data = self.data.copy()
        data[np.broadcast_to(mask, data.shape)] = value
        out = self._make_child(data, (self,), "masked_fill")
        if out.requires_grad:

            def _backward() -> None:
                grad = out.grad.copy()
                grad[np.broadcast_to(mask, grad.shape)] = 0.0
                self._accumulate(grad)

            out._backward = _backward
        return out


def tensor(data: ArrayLike, requires_grad: bool = False, dtype=None) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad, dtype=dtype)


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = _GRAD_STATE.enabled and any(t.requires_grad for t in tensors)
    out = Tensor.__new__(Tensor)
    out.data = data
    out.grad = None
    out.requires_grad = requires
    out._backward = None
    out._prev = tuple(tensors) if requires else ()
    out._op = "concat"
    if requires:
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def _backward() -> None:
            for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    slicer = [slice(None)] * data.ndim
                    slicer[axis] = slice(start, stop)
                    t._accumulate(out.grad[tuple(slicer)])

        out._backward = _backward
    return out


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = list(tensors)
    data = np.stack([t.data for t in tensors], axis=axis)
    requires = _GRAD_STATE.enabled and any(t.requires_grad for t in tensors)
    out = Tensor.__new__(Tensor)
    out.data = data
    out.grad = None
    out.requires_grad = requires
    out._backward = None
    out._prev = tuple(tensors) if requires else ()
    out._op = "stack"
    if requires:

        def _backward() -> None:
            grads = np.split(out.grad, len(tensors), axis=axis)
            for t, g in zip(tensors, grads):
                if t.requires_grad:
                    t._accumulate(np.squeeze(g, axis=axis))

        out._backward = _backward
    return out
