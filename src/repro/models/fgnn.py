"""FGNN-style encoder (Qiu et al., CIKM 2019) — extension model.

The paper's related-work section positions FGNN as the WGAT
(weighted graph attention) refinement of SR-GNN.  This implementation
follows that recipe: per-session item graphs, a stack of edge-weighted
graph-attention layers, and an attentive readout queried by the last
item.  It is *not* part of the paper's evaluated five, but plugs into
REKS identically — a sixth instantiation demonstrating the framework's
genericity claim.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd import init
from repro.autograd.tensor import Tensor
from repro.data.loader import SessionBatch
from repro.models.base import SessionEncoder
from repro.models.srgnn import batch_session_graphs
from repro.nn.linear import Linear
from repro.nn.module import Module, ModuleList, Parameter

NEG_INF = -1e9


class WeightedGraphAttention(Module):
    """One WGAT layer over a batch of dense session adjacencies.

    Attention logits combine transformed endpoints and the edge weight:
    ``e_ij = leaky_relu(a1·Wh_i + a2·Wh_j + a3·w_ij)``, softmaxed over
    each node's in-neighborhood (self-loops included so isolated nodes
    keep their state).
    """

    def __init__(self, dim: int, negative_slope: float = 0.2,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.dim = dim
        self.negative_slope = negative_slope
        self.transform = Linear(dim, dim, bias=False, rng=rng)
        self.attn_src = Parameter(init.xavier_uniform((dim, 1), rng))
        self.attn_dst = Parameter(init.xavier_uniform((dim, 1), rng))
        self.attn_edge = Parameter(init.xavier_uniform((1, 1), rng))

    def forward(self, hidden: Tensor, adjacency: np.ndarray,
                node_mask: np.ndarray) -> Tensor:
        """``hidden (B, n, d)``, ``adjacency (B, n, n)`` edge weights."""
        batch, n, _ = hidden.shape
        transformed = self.transform(hidden)                  # (B, n, d)
        src_score = transformed.matmul(self.attn_src)         # (B, n, 1)
        dst_score = transformed.matmul(self.attn_dst)         # (B, n, 1)
        # e[b, i, j]: node i attends over in-neighbor j.
        edge_term = Tensor(adjacency.astype(np.float32)) * self.attn_edge[0, 0]
        logits = (src_score + dst_score.swapaxes(1, 2)) + edge_term
        leaky = logits.relu() - (-logits).relu() * self.negative_slope
        # Mask: attend only along existing edges or the self-loop.
        eye = np.eye(n, dtype=bool)[None]
        allowed = (adjacency > 0) | eye
        allowed &= node_mask[:, None, :].astype(bool)
        weights = F.softmax(leaky.masked_fill(~allowed, NEG_INF), axis=-1)
        return weights.matmul(transformed).sigmoid()


class FGNN(SessionEncoder):
    """WGAT session encoder with last-item attentive readout."""

    name = "fgnn"

    def __init__(self, n_items: int, dim: int, num_layers: int = 2,
                 item_init: Optional[np.ndarray] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        rng = rng or np.random.default_rng()
        super().__init__(n_items, dim, item_init=item_init, rng=rng)
        self.layers = ModuleList([
            WeightedGraphAttention(dim, rng=rng) for _ in range(num_layers)
        ])
        self.readout_query = Linear(dim, dim, rng=rng)
        self.readout_key = Linear(dim, dim, rng=rng)
        self.out = Linear(2 * dim, dim, bias=False, rng=rng)

    def encode(self, batch: SessionBatch) -> Tensor:
        node_ids, node_mask, adj_in, adj_out, alias = batch_session_graphs(
            batch.items)
        # WGAT uses one weighted adjacency; merge both directions.
        adjacency = adj_in + adj_out
        hidden = self.item_embedding(node_ids)
        for layer in self.layers:
            hidden = layer(hidden, adjacency, node_mask) + hidden

        idx = np.arange(batch.batch_size)
        last_nodes = alias[idx, batch.lengths - 1]
        last = hidden[idx, last_nodes]                         # (B, d)

        query = self.readout_query(last).reshape(
            batch.batch_size, 1, self.dim)
        keys = self.readout_key(hidden)
        scores = (query * keys).sum(axis=-1)                   # (B, n)
        scores = scores.masked_fill(node_mask < 0.5, NEG_INF)
        weights = F.softmax(scores, axis=-1)
        pooled = (weights.reshape(*weights.shape, 1) * hidden).sum(axis=1)
        return self.out(F.concat([last, pooled], axis=-1))
