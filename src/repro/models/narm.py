"""NARM (Li et al., CIKM 2017): neural attentive session recommendation.

A GRU encoder provides (i) a *global* representation — the final hidden
state summarizing the whole session — and (ii) a *local* representation —
an additive-attention blend of all hidden states queried by the final
one, capturing the session's main purpose.  Their concatenation is
compressed back to ``dim`` so downstream REKS components see a single
``Se`` vector (standing in for NARM's bilinear decoder).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.data.loader import SessionBatch
from repro.models.base import SessionEncoder
from repro.nn.attention import AdditiveAttention
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.nn.rnn import GRU


class NARM(SessionEncoder):
    """Hybrid (global + local attention) session encoder."""

    name = "narm"

    def __init__(self, n_items: int, dim: int, dropout: float = 0.5,
                 item_init: Optional[np.ndarray] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        rng = rng or np.random.default_rng()
        super().__init__(n_items, dim, item_init=item_init, rng=rng)
        self.gru = GRU(dim, dim, rng=rng)
        self.attention = AdditiveAttention(dim, rng=rng)
        self.combine = Linear(2 * dim, dim, bias=False, rng=rng)
        self.embed_drop = Dropout(dropout, rng=rng)
        self.repr_drop = Dropout(dropout, rng=rng)

    def encode(self, batch: SessionBatch) -> Tensor:
        embedded = self.embed_drop(self.embed_sessions(batch))
        outputs, final_hidden = self.gru(embedded, mask=batch.mask)
        c_global = final_hidden
        c_local, _ = self.attention(final_hidden, outputs, mask=batch.mask)
        combined = F.concat([c_global, c_local], axis=-1)
        return self.combine(self.repr_drop(combined))
