"""Standalone (non-explainable) training for the baseline columns.

Trains any :class:`SessionEncoder` with full-softmax cross-entropy on
next-item prediction, validates HR@K each epoch, restores the best
checkpoint, and exposes full-catalog scoring for evaluation.  This is
the "vanilla model" side of every paper comparison; the inputs (TransE
item initialization and identical session splits) match the REKS side,
as required for the paper's fairness protocol (§IV-A-2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.autograd import Adam, clip_grad_norm, functional as F, no_grad
from repro.data.loader import SessionBatch, SessionBatcher
from repro.data.schema import Session
from repro.eval.metrics import evaluate_rankings, top_k_from_scores
from repro.models.base import SessionEncoder


@dataclass
class StandaloneConfig:
    """Training knobs for a standalone encoder."""

    epochs: int = 10
    batch_size: int = 128
    lr: float = 1e-3
    weight_decay: float = 0.0
    max_grad_norm: float = 5.0
    max_session_length: int = 10
    augment: bool = True
    patience: int = 3
    eval_k: int = 10
    cloze_prob: float = 0.0  # > 0 switches BERT4REC to Cloze training
    seed: int = 0


@dataclass
class TrainingHistory:
    """Per-epoch loss and validation accuracy."""

    losses: List[float] = field(default_factory=list)
    val_metrics: List[Dict[str, float]] = field(default_factory=list)
    best_epoch: int = -1


class StandaloneTrainer:
    """Fit/evaluate one encoder on one dataset split."""

    def __init__(self, encoder: SessionEncoder,
                 train_sessions: Sequence[Session],
                 val_sessions: Sequence[Session],
                 config: Optional[StandaloneConfig] = None) -> None:
        self.encoder = encoder
        self.config = config or StandaloneConfig()
        self.rng = np.random.default_rng(self.config.seed)
        self.train_batcher = SessionBatcher(
            train_sessions, batch_size=self.config.batch_size,
            max_length=self.config.max_session_length,
            augment=self.config.augment, shuffle=True,
            rng=np.random.default_rng(self.config.seed + 1))
        self.val_sessions = list(val_sessions)
        self.optimizer = Adam(encoder.parameters(), lr=self.config.lr,
                              weight_decay=self.config.weight_decay)
        self.history = TrainingHistory()

    # ------------------------------------------------------------------
    def fit(self, verbose: bool = False) -> TrainingHistory:
        cfg = self.config
        best_score = -np.inf
        best_state = None
        bad_epochs = 0
        for epoch in range(cfg.epochs):
            self.encoder.train()
            total_loss, total_examples = 0.0, 0
            for batch in self.train_batcher:
                loss = self._train_step(batch)
                total_loss += loss * batch.batch_size
                total_examples += batch.batch_size
            epoch_loss = total_loss / max(1, total_examples)
            self.history.losses.append(epoch_loss)

            metrics = self.evaluate(self.val_sessions, ks=(cfg.eval_k,))
            self.history.val_metrics.append(metrics)
            score = metrics[f"HR@{cfg.eval_k}"]
            if verbose:
                print(f"[{self.encoder.name}] epoch {epoch + 1}: "
                      f"loss={epoch_loss:.4f} HR@{cfg.eval_k}={score:.2f}")
            if score > best_score:
                best_score = score
                best_state = self.encoder.state_dict()
                self.history.best_epoch = epoch
                bad_epochs = 0
            else:
                bad_epochs += 1
                if bad_epochs > cfg.patience:
                    break
        if best_state is not None:
            self.encoder.load_state_dict(best_state)
        return self.history

    def _train_step(self, batch: SessionBatch) -> float:
        cfg = self.config
        self.optimizer.zero_grad()
        # Duck-typed so importing the trainer doesn't import BERT4REC:
        # cloze_forward is its masked-LM training interface.
        if cfg.cloze_prob > 0 and hasattr(self.encoder, "cloze_forward"):
            logits, targets, _ = self.encoder.cloze_forward(
                batch, cfg.cloze_prob, self.rng)
            loss = F.cross_entropy(logits, targets)
        else:
            _, logits = self.encoder(batch)
            loss = F.cross_entropy(logits, batch.targets)
        loss.backward()
        clip_grad_norm(self.encoder.parameters(), cfg.max_grad_norm)
        self.optimizer.step()
        return float(loss.item())

    # ------------------------------------------------------------------
    def score_sessions(self, sessions: Sequence[Session],
                       batch_size: int = 256) -> np.ndarray:
        """Full-catalog scores ``(len(sessions), n_items + 1)``."""
        self.encoder.eval()
        batcher = SessionBatcher(sessions, batch_size=batch_size,
                                 max_length=self.config.max_session_length,
                                 augment=False, shuffle=False)
        chunks = []
        with no_grad():
            for batch in batcher:
                _, logits = self.encoder(batch)
                chunks.append(logits.numpy().copy())
        return np.concatenate(chunks, axis=0)

    def evaluate(self, sessions: Sequence[Session],
                 ks=(5, 10, 20)) -> Dict[str, float]:
        """HR/NDCG/MRR over full-catalog rankings."""
        if not sessions:
            return {f"{m}@{k}": 0.0 for k in ks for m in ("HR", "NDCG", "MRR")}
        scores = self.score_sessions(sessions)
        max_k = max(ks)
        ranked = top_k_from_scores(scores, max_k)
        targets = [s.target for s in sessions]
        return evaluate_rankings(ranked, targets, ks=ks)
