"""The five non-explainable session-based recommenders REKS wraps.

Each model is a :class:`~repro.models.base.SessionEncoder`: it maps a
batch of padded session prefixes to a dense session representation
``Se`` (Eq. 2) and scores the item catalog by inner product with the
(tied) item embedding table.  REKS consumes ``Se`` inside its policy
network; the standalone trainer turns any encoder into the paper's
baseline column.

Model classes are exported **lazily** (PEP 562): ``from repro.models
import NARM`` imports only ``repro.models.narm`` — a serving process
that needs one encoder (or a cascade provider) no longer pays import
cost for all eight baselines.  Registry helpers and the standalone
trainer stay eager; they are cheap and ubiquitous.
"""

from repro.models.base import SessionEncoder
from repro.models.registry import (EXTENSION_MODELS, MODEL_NAMES,
                                   create_encoder, resolve_encoder_class)
from repro.models.standalone import StandaloneTrainer, StandaloneConfig

# attribute -> (module, name) for deferred imports.
_LAZY = {
    "GRU4REC": ("repro.models.gru4rec", "GRU4REC"),
    "NARM": ("repro.models.narm", "NARM"),
    "SRGNN": ("repro.models.srgnn", "SRGNN"),
    "GCSAN": ("repro.models.gcsan", "GCSAN"),
    "BERT4REC": ("repro.models.bert4rec", "BERT4REC"),
    "FGNN": ("repro.models.fgnn", "FGNN"),
    "CLASSIC_BASELINES": ("repro.models.neighbors", "CLASSIC_BASELINES"),
    "PopRecommender": ("repro.models.neighbors", "PopRecommender"),
    "SessionPopRecommender": ("repro.models.neighbors",
                              "SessionPopRecommender"),
    "MarkovChainRecommender": ("repro.models.neighbors",
                               "MarkovChainRecommender"),
    "ItemKNNRecommender": ("repro.models.neighbors", "ItemKNNRecommender"),
    "create_classic_baseline": ("repro.models.neighbors",
                                "create_classic_baseline"),
}

__all__ = [
    "SessionEncoder",
    "GRU4REC",
    "NARM",
    "SRGNN",
    "GCSAN",
    "BERT4REC",
    "FGNN",
    "EXTENSION_MODELS",
    "MODEL_NAMES",
    "create_encoder",
    "resolve_encoder_class",
    "StandaloneTrainer",
    "StandaloneConfig",
    "CLASSIC_BASELINES",
    "PopRecommender",
    "SessionPopRecommender",
    "MarkovChainRecommender",
    "ItemKNNRecommender",
    "create_classic_baseline",
]


def __getattr__(name: str):
    try:
        module_path, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_path), attr)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
