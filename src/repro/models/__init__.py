"""The five non-explainable session-based recommenders REKS wraps.

Each model is a :class:`~repro.models.base.SessionEncoder`: it maps a
batch of padded session prefixes to a dense session representation
``Se`` (Eq. 2) and scores the item catalog by inner product with the
(tied) item embedding table.  REKS consumes ``Se`` inside its policy
network; the standalone trainer turns any encoder into the paper's
baseline column.
"""

from repro.models.base import SessionEncoder
from repro.models.gru4rec import GRU4REC
from repro.models.narm import NARM
from repro.models.srgnn import SRGNN
from repro.models.gcsan import GCSAN
from repro.models.bert4rec import BERT4REC
from repro.models.registry import MODEL_NAMES, create_encoder
from repro.models.standalone import StandaloneTrainer, StandaloneConfig
from repro.models.neighbors import (
    CLASSIC_BASELINES,
    ItemKNNRecommender,
    MarkovChainRecommender,
    PopRecommender,
    SessionPopRecommender,
    create_classic_baseline,
)

__all__ = [
    "SessionEncoder",
    "GRU4REC",
    "NARM",
    "SRGNN",
    "GCSAN",
    "BERT4REC",
    "MODEL_NAMES",
    "create_encoder",
    "StandaloneTrainer",
    "StandaloneConfig",
    "CLASSIC_BASELINES",
    "PopRecommender",
    "SessionPopRecommender",
    "MarkovChainRecommender",
    "ItemKNNRecommender",
    "create_classic_baseline",
]
