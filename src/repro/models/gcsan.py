"""GCSAN (Xu et al., IJCAI 2019): graph contextualized self-attention.

A gated GNN captures local (graph) dependencies and a multi-head
self-attention stack captures long-range dependencies; the session
representation blends the self-attention output at the last position
with the GNN hidden of the last item via a weight ``omega``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.data.loader import SessionBatch
from repro.models.base import SessionEncoder
from repro.models.srgnn import batch_session_graphs
from repro.nn.graph import GatedGraphConv
from repro.nn.transformer import TransformerEncoder


class GCSAN(SessionEncoder):
    """GGNN + self-attention session encoder."""

    name = "gcsan"

    def __init__(self, n_items: int, dim: int, gnn_steps: int = 1,
                 num_heads: int = 1, num_layers: int = 1,
                 omega: float = 0.5, dropout: float = 0.5,
                 item_init: Optional[np.ndarray] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        rng = rng or np.random.default_rng()
        super().__init__(n_items, dim, item_init=item_init, rng=rng)
        if not 0.0 <= omega <= 1.0:
            raise ValueError(f"omega must be in [0, 1], got {omega}")
        self.omega = omega
        self.gnn = GatedGraphConv(dim, num_steps=gnn_steps, rng=rng)
        self.san = TransformerEncoder(dim, num_heads, num_layers,
                                      dropout=dropout, rng=rng)

    def encode(self, batch: SessionBatch) -> Tensor:
        node_ids, _, adj_in, adj_out, alias = batch_session_graphs(batch.items)
        node_emb = self.item_embedding(node_ids)
        node_hidden = self.gnn(node_emb, adj_in, adj_out)

        rows = np.arange(batch.batch_size)[:, None]
        seq_hidden = node_hidden[rows, alias]  # (B, T, d)
        attended = self.san(seq_hidden, mask=batch.mask)

        idx = np.arange(batch.batch_size)
        last_pos = batch.lengths - 1
        f_last = attended[idx, last_pos]
        h_last = seq_hidden[idx, last_pos]
        return f_last * self.omega + h_last * (1.0 - self.omega)
