"""BERT4REC (Sun et al., CIKM 2019): bidirectional transformer encoder.

Items plus learned positions feed a bidirectional self-attention stack.
As the REKS session encoder we read the representation at the last real
position; the standalone trainer additionally supports the original
Cloze objective (random positions replaced by a ``[MASK]`` token whose
output must reproduce the hidden item).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor
from repro.data.loader import SessionBatch
from repro.models.base import SessionEncoder
from repro.nn.dropout import Dropout
from repro.nn.norm import LayerNorm
from repro.nn.transformer import LearnedPositionalEmbedding, TransformerEncoder


class BERT4REC(SessionEncoder):
    """Bidirectional self-attention session encoder.

    The item vocabulary is extended with one ``[MASK]`` token at index
    ``n_items + 1`` used only by the Cloze objective.
    """

    name = "bert4rec"

    def __init__(self, n_items: int, dim: int, num_heads: int = 2,
                 num_layers: int = 2, max_len: int = 50,
                 dropout: float = 0.5,
                 item_init: Optional[np.ndarray] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        rng = rng or np.random.default_rng()
        super().__init__(n_items, dim, item_init=None, rng=rng)
        # Rebuild the embedding with a [MASK] row, then restore TransE init.
        from repro.nn.embedding import Embedding

        self.item_embedding = Embedding(n_items + 2, dim, padding_idx=0, rng=rng)
        if item_init is not None:
            if item_init.shape != (n_items + 1, dim):
                raise ValueError(
                    f"item_init shape {item_init.shape} != {(n_items + 1, dim)}"
                )
            self.item_embedding.weight.data[:n_items + 1] = item_init
            self.item_embedding.weight.data[0] = 0.0
        self.mask_token = n_items + 1
        self.positions = LearnedPositionalEmbedding(max_len, dim, rng=rng)
        self.input_norm = LayerNorm(dim)
        self.input_drop = Dropout(dropout, rng=rng)
        self.encoder = TransformerEncoder(dim, num_heads, num_layers,
                                          dropout=dropout, rng=rng)

    def _encode_tokens(self, items: np.ndarray, mask: np.ndarray) -> Tensor:
        embedded = self.item_embedding(items)
        hidden = self.input_drop(self.input_norm(self.positions(embedded)))
        return self.encoder(hidden, mask=mask)

    def encode(self, batch: SessionBatch) -> Tensor:
        hidden = self._encode_tokens(batch.items, batch.mask)
        idx = np.arange(batch.batch_size)
        return hidden[idx, batch.lengths - 1]

    def score_items(self, session_repr: Tensor) -> Tensor:
        """Logits over the real catalog (drops the [MASK] column)."""
        logits = session_repr.matmul(
            self.item_embedding.weight[:self.n_items + 1].transpose())
        mask = np.zeros(self.n_items + 1, dtype=bool)
        mask[0] = True
        return logits.masked_fill(mask, -1e9)

    # ------------------------------------------------------------------
    def cloze_forward(self, batch: SessionBatch, mask_prob: float,
                      rng: np.random.Generator
                      ) -> Tuple[Tensor, np.ndarray, np.ndarray]:
        """Cloze-task forward pass (original BERT4REC objective).

        Randomly replaces real positions with ``[MASK]`` (at least one
        per session) and returns ``(logits_at_masked, targets, rows)``.
        """
        items = batch.items.copy()
        cloze_mask = (rng.random(items.shape) < mask_prob) & (batch.mask > 0)
        # Guarantee at least one masked position per row.
        for b in range(items.shape[0]):
            if not cloze_mask[b].any():
                cloze_mask[b, int(batch.lengths[b]) - 1] = True
        targets = batch.items[cloze_mask]
        items[cloze_mask] = self.mask_token
        hidden = self._encode_tokens(items, batch.mask)
        rows, cols = np.where(cloze_mask)
        picked = hidden[rows, cols]
        return self.score_items(picked), targets, rows
