"""Common interface for session encoders."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor
from repro.data.loader import SessionBatch
from repro.nn.embedding import Embedding
from repro.nn.module import Module

NEG_INF = -1e9


class SessionEncoder(Module):
    """Base class: item embeddings + ``encode`` -> session representation.

    Parameters
    ----------
    n_items:
        Catalog size; item ids are 1..n_items and 0 is padding.
    dim:
        Embedding and session representation dimension (the paper uses
        d0 = d1, which :class:`repro.core.agent.REKSAgent` relies on).
    item_init:
        Optional ``(n_items + 1, dim)`` initial item embedding matrix,
        normally the TransE product vectors (Eq. 2's ``X0_V``).
    """

    name = "base"

    def __init__(self, n_items: int, dim: int,
                 item_init: Optional[np.ndarray] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.n_items = n_items
        self.dim = dim
        self.item_embedding = Embedding(n_items + 1, dim, padding_idx=0, rng=rng)
        if item_init is not None:
            if item_init.shape != (n_items + 1, dim):
                raise ValueError(
                    f"item_init shape {item_init.shape} != {(n_items + 1, dim)}"
                )
            self.item_embedding.weight.data[...] = item_init
            self.item_embedding.weight.data[0] = 0.0

    # ------------------------------------------------------------------
    def encode(self, batch: SessionBatch) -> Tensor:  # pragma: no cover
        """Return the session representation ``Se`` of shape (B, dim)."""
        raise NotImplementedError

    def score_items(self, session_repr: Tensor) -> Tensor:
        """Catalog logits ``(B, n_items + 1)``; padding column is -inf."""
        logits = session_repr.matmul(self.item_embedding.weight.transpose())
        mask = np.zeros(self.n_items + 1, dtype=bool)
        mask[0] = True
        return logits.masked_fill(mask, NEG_INF)

    def forward(self, batch: SessionBatch) -> Tuple[Tensor, Tensor]:
        """``(session_repr, catalog_logits)`` for one batch."""
        session_repr = self.encode(batch)
        return session_repr, self.score_items(session_repr)

    # ------------------------------------------------------------------
    def embed_sessions(self, batch: SessionBatch) -> Tensor:
        """Shared helper: item embeddings ``(B, T, dim)`` for a batch."""
        return self.item_embedding(batch.items)
