"""Non-neural session-based baselines (extensions beyond the paper).

The paper's related-work section (§II-A) grounds SR in frequency- and
Markov-chain methods before the five deep models it evaluates.  These
classic baselines are cheap sanity floors for any experiment and are
standard in open-source SR suites:

* :class:`PopRecommender` — global popularity.
* :class:`SessionPopRecommender` — popularity within the session, then
  global (S-POP).
* :class:`MarkovChainRecommender` — first-order item-to-item
  transition counts (the MC family of Shani et al. / FPMC's MC part).
* :class:`ItemKNNRecommender` — cosine co-occurrence similarity to the
  last item.

All share the interface: ``fit(sessions)`` then
``score_sessions(sessions) -> (n, n_items + 1)`` so the evaluation
stack treats them exactly like the neural encoders.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Sequence

import numpy as np

from repro.data.schema import Session


class _CountBasedRecommender:
    """Shared scaffolding: fit counts over training sessions."""

    def __init__(self, n_items: int) -> None:
        self.n_items = n_items
        self._fitted = False

    def fit(self, sessions: Sequence[Session]) -> "_CountBasedRecommender":
        self._fit(sessions)
        self._fitted = True
        return self

    def _fit(self, sessions: Sequence[Session]) -> None:  # pragma: no cover
        raise NotImplementedError

    def score_sessions(self, sessions: Sequence[Session]) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("call fit() before score_sessions()")
        scores = np.zeros((len(sessions), self.n_items + 1), dtype=np.float64)
        for row, session in enumerate(sessions):
            self._score_one(session.prefix, scores[row])
        scores[:, 0] = -np.inf
        return scores

    def _score_one(self, prefix, out) -> None:  # pragma: no cover
        raise NotImplementedError


class PopRecommender(_CountBasedRecommender):
    """Rank items by global training popularity."""

    def _fit(self, sessions: Sequence[Session]) -> None:
        counts = Counter(i for s in sessions for i in s.items)
        self.popularity = np.zeros(self.n_items + 1, dtype=np.float64)
        for item, count in counts.items():
            self.popularity[item] = count

    def _score_one(self, prefix, out) -> None:
        out[:] = self.popularity


class SessionPopRecommender(_CountBasedRecommender):
    """S-POP: items already in the session first, by in-session count,
    tie-broken (and backfilled) by global popularity."""

    def _fit(self, sessions: Sequence[Session]) -> None:
        counts = Counter(i for s in sessions for i in s.items)
        total = sum(counts.values()) or 1
        self.popularity = np.zeros(self.n_items + 1, dtype=np.float64)
        for item, count in counts.items():
            self.popularity[item] = count / total  # in (0, 1)

    def _score_one(self, prefix, out) -> None:
        out[:] = self.popularity
        for item, count in Counter(prefix).items():
            out[item] += count  # integer in-session counts dominate


class MarkovChainRecommender(_CountBasedRecommender):
    """First-order Markov chain over consecutive training items."""

    def __init__(self, n_items: int, popularity_smoothing: float = 1e-3
                 ) -> None:
        super().__init__(n_items)
        self.popularity_smoothing = popularity_smoothing

    def _fit(self, sessions: Sequence[Session]) -> None:
        transitions: Dict[int, Counter] = defaultdict(Counter)
        counts: Counter = Counter()
        for session in sessions:
            counts.update(session.items)
            for src, dst in zip(session.items[:-1], session.items[1:]):
                transitions[src][dst] += 1
        self.transitions = {
            src: dict(dsts) for src, dsts in transitions.items()
        }
        self.popularity = np.zeros(self.n_items + 1, dtype=np.float64)
        for item, count in counts.items():
            self.popularity[item] = count
        if self.popularity.max() > 0:
            self.popularity /= self.popularity.max()

    def _score_one(self, prefix, out) -> None:
        out[:] = self.popularity_smoothing * self.popularity
        last = prefix[-1]
        for dst, count in self.transitions.get(last, {}).items():
            out[dst] += count


class ItemKNNRecommender(_CountBasedRecommender):
    """Cosine item-item co-occurrence similarity to the last item."""

    def __init__(self, n_items: int, regularization: float = 20.0) -> None:
        super().__init__(n_items)
        self.regularization = regularization

    def _fit(self, sessions: Sequence[Session]) -> None:
        cooc: Dict[int, Counter] = defaultdict(Counter)
        support: Counter = Counter()
        for session in sessions:
            distinct = sorted(set(session.items))
            support.update(distinct)
            for i, a in enumerate(distinct):
                for b in distinct[i + 1:]:
                    cooc[a][b] += 1
                    cooc[b][a] += 1
        self.support = support
        self.similarity: Dict[int, Dict[int, float]] = {}
        for a, row in cooc.items():
            sims = {}
            for b, count in row.items():
                denom = np.sqrt(support[a] * support[b]) + self.regularization
                sims[b] = count / denom
            self.similarity[a] = sims

    def _score_one(self, prefix, out) -> None:
        last = prefix[-1]
        for item, sim in self.similarity.get(last, {}).items():
            out[item] = sim


CLASSIC_BASELINES = {
    "pop": PopRecommender,
    "spop": SessionPopRecommender,
    "markov": MarkovChainRecommender,
    "itemknn": ItemKNNRecommender,
}


def create_classic_baseline(name: str, n_items: int, **kwargs):
    """Instantiate one of the classic baselines by name."""
    key = name.lower()
    if key not in CLASSIC_BASELINES:
        raise KeyError(f"unknown classic baseline {name!r}; "
                       f"choose from {sorted(CLASSIC_BASELINES)}")
    return CLASSIC_BASELINES[key](n_items=n_items, **kwargs)
