"""SR-GNN (Wu et al., AAAI 2019): session graphs + gated GNN.

Each session becomes a small directed graph over its distinct items; a
gated graph network propagates along normalized in/out adjacency, a
soft-attention layer (queried by the last item's node state) produces a
global vector, and the session representation is a linear blend of the
last item's state and that global vector.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd import functional as F
from repro.autograd import init
from repro.autograd.tensor import Tensor
from repro.data.loader import SessionBatch
from repro.models.base import SessionEncoder
from repro.nn.graph import GatedGraphConv, build_session_graph
from repro.nn.linear import Linear
from repro.nn.module import Parameter


def batch_session_graphs(items: np.ndarray) -> Tuple[np.ndarray, np.ndarray,
                                                     np.ndarray, np.ndarray,
                                                     np.ndarray]:
    """Build padded per-session graphs for a ``(B, T)`` item matrix.

    Returns ``(node_ids, node_mask, adj_in, adj_out, alias)`` where
    ``alias[b, t]`` maps sequence position ``t`` to its node index (0 for
    padded positions; combine with the batch mask before use).
    """
    batch = items.shape[0]
    graphs = [build_session_graph(items[b]) for b in range(batch)]
    n_max = max(len(g[0]) for g in graphs)
    width = items.shape[1]
    node_ids = np.zeros((batch, n_max), dtype=np.int64)
    node_mask = np.zeros((batch, n_max), dtype=np.float32)
    adj_in = np.zeros((batch, n_max, n_max), dtype=np.float32)
    adj_out = np.zeros((batch, n_max, n_max), dtype=np.float32)
    alias = np.zeros((batch, width), dtype=np.int64)
    for b, (nodes, a_in, a_out, al) in enumerate(graphs):
        n = len(nodes)
        node_ids[b, :n] = nodes
        node_mask[b, :n] = 1.0
        adj_in[b, :n, :n] = a_in
        adj_out[b, :n, :n] = a_out
        alias[b, :len(al)] = al
    return node_ids, node_mask, adj_in, adj_out, alias


class SRGNN(SessionEncoder):
    """Gated-graph session encoder with soft attention readout."""

    name = "srgnn"

    def __init__(self, n_items: int, dim: int, gnn_steps: int = 1,
                 item_init: Optional[np.ndarray] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        rng = rng or np.random.default_rng()
        super().__init__(n_items, dim, item_init=item_init, rng=rng)
        self.gnn = GatedGraphConv(dim, num_steps=gnn_steps, rng=rng)
        self.w1 = Linear(dim, dim, rng=rng)
        self.w2 = Linear(dim, dim, rng=rng)
        self.q_vec = Parameter(init.xavier_uniform((dim, 1), rng))
        self.w3 = Linear(2 * dim, dim, bias=False, rng=rng)

    def encode(self, batch: SessionBatch) -> Tensor:
        node_ids, _, adj_in, adj_out, alias = batch_session_graphs(batch.items)
        node_emb = self.item_embedding(node_ids)
        node_hidden = self.gnn(node_emb, adj_in, adj_out)

        rows = np.arange(batch.batch_size)[:, None]
        seq_hidden = node_hidden[rows, alias]  # (B, T, d)
        last = node_hidden[np.arange(batch.batch_size),
                           alias[np.arange(batch.batch_size),
                                 batch.lengths - 1]]  # (B, d)

        scores = (self.w1(last).reshape(batch.batch_size, 1, self.dim)
                  + self.w2(seq_hidden)).sigmoid().matmul(self.q_vec)
        weights = scores * Tensor(batch.mask[:, :, None])
        s_global = (weights * seq_hidden).sum(axis=1)
        return self.w3(F.concat([last, s_global], axis=-1))
