"""Name-based construction of the five encoders.

Resolution is **lazy**: the registry maps names to dotted paths and
imports a model's module only when that model is actually constructed.
A serving process that only needs one provider (or none — REKS itself
constructs its wrapped encoder through here) no longer pays import +
module-level initialization for all eight baselines.
"""

from __future__ import annotations

import importlib
import inspect
from typing import Optional, Tuple

import numpy as np

from repro.models.base import SessionEncoder

# name -> (module, class); modules import on first use.
_REGISTRY: dict = {
    "gru4rec": ("repro.models.gru4rec", "GRU4REC"),
    "narm": ("repro.models.narm", "NARM"),
    "srgnn": ("repro.models.srgnn", "SRGNN"),
    "sr-gnn": ("repro.models.srgnn", "SRGNN"),
    "gcsan": ("repro.models.gcsan", "GCSAN"),
    "bert4rec": ("repro.models.bert4rec", "BERT4REC"),
    "fgnn": ("repro.models.fgnn", "FGNN"),
}

# The paper's evaluated five; FGNN is an extension instantiation.
MODEL_NAMES = ("gru4rec", "narm", "srgnn", "gcsan", "bert4rec")
EXTENSION_MODELS = ("fgnn",)


def resolve_encoder_class(name: str) -> type:
    """Import-on-demand lookup of an encoder class by name."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown model {name!r}; choose from {MODEL_NAMES}")
    module_path, cls_name = _REGISTRY[key]
    return getattr(importlib.import_module(module_path), cls_name)


def create_encoder(name: str, n_items: int, dim: int,
                   item_init: Optional[np.ndarray] = None,
                   rng: Optional[np.random.Generator] = None,
                   **kwargs) -> SessionEncoder:
    """Instantiate an encoder by (case-insensitive) name."""
    cls = resolve_encoder_class(name)
    # Keep only kwargs the specific constructor accepts, so callers can
    # pass a uniform knob set (e.g. dropout) across all five models.
    accepted = set(inspect.signature(cls.__init__).parameters)
    filtered = {k: v for k, v in kwargs.items() if k in accepted}
    return cls(n_items=n_items, dim=dim, item_init=item_init, rng=rng,
               **filtered)
