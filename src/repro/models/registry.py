"""Name-based construction of the five encoders."""

from __future__ import annotations

import inspect
from typing import Optional

import numpy as np

from repro.models.base import SessionEncoder
from repro.models.bert4rec import BERT4REC
from repro.models.fgnn import FGNN
from repro.models.gcsan import GCSAN
from repro.models.gru4rec import GRU4REC
from repro.models.narm import NARM
from repro.models.srgnn import SRGNN

_REGISTRY = {
    "gru4rec": GRU4REC,
    "narm": NARM,
    "srgnn": SRGNN,
    "sr-gnn": SRGNN,
    "gcsan": GCSAN,
    "bert4rec": BERT4REC,
    "fgnn": FGNN,
}

# The paper's evaluated five; FGNN is an extension instantiation.
MODEL_NAMES = ("gru4rec", "narm", "srgnn", "gcsan", "bert4rec")
EXTENSION_MODELS = ("fgnn",)


def create_encoder(name: str, n_items: int, dim: int,
                   item_init: Optional[np.ndarray] = None,
                   rng: Optional[np.random.Generator] = None,
                   **kwargs) -> SessionEncoder:
    """Instantiate an encoder by (case-insensitive) name."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown model {name!r}; choose from {MODEL_NAMES}")
    cls = _REGISTRY[key]
    # Keep only kwargs the specific constructor accepts, so callers can
    # pass a uniform knob set (e.g. dropout) across all five models.
    accepted = set(inspect.signature(cls.__init__).parameters)
    filtered = {k: v for k, v in kwargs.items() if k in accepted}
    return cls(n_items=n_items, dim=dim, item_init=item_init, rng=rng,
               **filtered)
