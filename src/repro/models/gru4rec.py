"""GRU4REC (Hidasi et al., ICLR 2016).

A multi-layer GRU over the session items; the final hidden state is the
session representation.  The original paper trains with ranking losses
(BPR/TOP1) on parallel mini-batches; following the REKS experimental
setup (and common practice in later comparisons) the standalone trainer
uses full-softmax cross-entropy, which performs comparably at this
catalog scale.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.data.loader import SessionBatch
from repro.models.base import SessionEncoder
from repro.nn.dropout import Dropout
from repro.nn.rnn import GRU


class GRU4REC(SessionEncoder):
    """RNN-based session encoder."""

    name = "gru4rec"

    def __init__(self, n_items: int, dim: int, num_layers: int = 1,
                 dropout: float = 0.5,
                 item_init: Optional[np.ndarray] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        rng = rng or np.random.default_rng()
        super().__init__(n_items, dim, item_init=item_init, rng=rng)
        self.gru = GRU(dim, dim, num_layers=num_layers, rng=rng)
        self.drop = Dropout(dropout, rng=rng)

    def encode(self, batch: SessionBatch) -> Tensor:
        embedded = self.drop(self.embed_sessions(batch))
        _, final_hidden = self.gru(embedded, mask=batch.mask)
        return final_hidden
