"""Paired significance testing for the Table VIII protocol.

The paper runs every (baseline, REKS_baseline) pair five times and
reports a paired t-test: ``*`` for p <= .05, ``**`` for p <= .01.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
from scipy import stats


def paired_t_test(baseline_runs: Sequence[float],
                  treatment_runs: Sequence[float]) -> Tuple[float, float]:
    """Return ``(t_statistic, p_value)`` for paired runs.

    Degenerate inputs (fewer than two runs, or identical differences
    with zero variance) return ``(nan, 1.0)`` / ``(inf, 0.0)`` style
    results consistent with scipy conventions, never raising.
    """
    base = np.asarray(baseline_runs, dtype=np.float64)
    treat = np.asarray(treatment_runs, dtype=np.float64)
    if base.shape != treat.shape:
        raise ValueError("paired t-test needs equal-length run lists")
    if len(base) < 2:
        return float("nan"), 1.0
    diff = treat - base
    if np.allclose(diff.std(), 0.0):
        if np.allclose(diff.mean(), 0.0):
            return 0.0, 1.0
        return float("inf") * np.sign(diff.mean()), 0.0
    t_stat, p_value = stats.ttest_rel(treat, base)
    return float(t_stat), float(p_value)


def significance_marker(p_value: float) -> str:
    """Map a p-value to the paper's star convention."""
    if np.isnan(p_value):
        return ""
    if p_value <= 0.01:
        return "**"
    if p_value <= 0.05:
        return "*"
    return ""


def improvement_percent(baseline: float, treatment: float) -> float:
    """Relative improvement in percent (the paper's Improv. columns)."""
    if baseline == 0:
        return float("inf") if treatment > 0 else 0.0
    return 100.0 * (treatment - baseline) / baseline
