"""High-level evaluation entry points used by benchmarks and examples."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.data.schema import Session
from repro.eval.metrics import top_k_from_scores


def evaluate_encoder(encoder,
                     train_sessions: Sequence[Session],
                     val_sessions: Sequence[Session],
                     test_sessions: Sequence[Session],
                     config=None,
                     ks=(5, 10, 20), verbose: bool = False) -> Dict[str, float]:
    """Train a standalone encoder and report test metrics (in percent)."""
    # Imported lazily: repro.models.standalone itself uses eval.metrics.
    from repro.models.standalone import StandaloneTrainer

    trainer = StandaloneTrainer(encoder, train_sessions, val_sessions,
                                config=config)
    trainer.fit(verbose=verbose)
    return trainer.evaluate(test_sessions, ks=ks)


def evaluate_reks(reks_trainer, test_sessions: Sequence[Session],
                  ks=(5, 10, 20)) -> Dict[str, float]:
    """Evaluate a fitted REKS trainer on test sessions (in percent).

    Thin indirection so benchmark code reads symmetrically for both
    columns of every comparison; delegates to
    :meth:`repro.core.trainer.REKSTrainer.evaluate`.
    """
    return reks_trainer.evaluate(test_sessions, ks=ks)


def rank_full_catalog(scores: np.ndarray, ks=(5, 10, 20)):
    """Ranked top-max(k) item ids from a dense score matrix."""
    return top_k_from_scores(scores, max(ks))
