"""Terminal-friendly figure rendering (bar and line charts in text).

The paper's Figures 3-7 and 9 are bar/line charts; the benchmark
harness prints these text renderings alongside the numeric tables so
``benchmarks/results/`` captures the figures too.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def bar_chart(values: Mapping[str, float], width: int = 40,
              title: str = "", fmt: str = "{:.2f}") -> str:
    """Horizontal bar chart: one row per labeled value."""
    if not values:
        return title
    longest = max(len(str(label)) for label in values)
    peak = max(abs(v) for v in values.values()) or 1.0
    lines = [title] if title else []
    for label, value in values.items():
        bar = "█" * max(1, int(round(width * abs(value) / peak)))
        lines.append(f"{str(label).ljust(longest)} |{bar} "
                     + fmt.format(value))
    return "\n".join(lines)


def grouped_bar_chart(groups: Mapping[str, Mapping[str, float]],
                      width: int = 30, title: str = "",
                      fmt: str = "{:.2f}") -> str:
    """Grouped bars: ``{group: {series: value}}`` (Fig. 3-6 layout)."""
    lines = [title] if title else []
    peak = max((abs(v) for g in groups.values() for v in g.values()),
               default=1.0) or 1.0
    series = []
    for group in groups.values():
        for name in group:
            if name not in series:
                series.append(name)
    longest = max((len(s) for s in series), default=0)
    for group_name, group in groups.items():
        lines.append(f"{group_name}:")
        for name in series:
            if name not in group:
                continue
            value = group[name]
            bar = "█" * max(1, int(round(width * abs(value) / peak)))
            lines.append(f"  {name.ljust(longest)} |{bar} "
                         + fmt.format(value))
    return "\n".join(lines)


def line_chart(xs: Sequence[float], series: Mapping[str, Sequence[float]],
               height: int = 10, width: int = 60, title: str = "") -> str:
    """Multi-series ASCII line chart (Fig. 7 layout).

    Marks each series with a distinct glyph on a character grid.
    """
    glyphs = "ox+*#@"
    all_values = [v for vs in series.values() for v in vs]
    if not all_values or not xs:
        return title
    lo, hi = min(all_values), max(all_values)
    span = (hi - lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for s_idx, (name, values) in enumerate(series.items()):
        glyph = glyphs[s_idx % len(glyphs)]
        for i, value in enumerate(values):
            col = int(round(i * (width - 1) / max(len(values) - 1, 1)))
            row = int(round((hi - value) / span * (height - 1)))
            grid[row][col] = glyph
    lines = [title] if title else []
    lines.append(f"{hi:.2f} ┐")
    for row in grid:
        lines.append("       │" + "".join(row))
    lines.append(f"{lo:.2f} ┴" + "─" * width)
    labels = "  ".join(f"{glyphs[i % len(glyphs)]}={name}"
                       for i, name in enumerate(series))
    lines.append("x: " + ", ".join(str(x) for x in xs))
    lines.append("series: " + labels)
    return "\n".join(lines)


def likert_chart(results: Mapping[str, Mapping[str, float]],
                 width: int = 30, title: str = "") -> str:
    """Fig. 9 layout: mean±std bars on the 1-5 Likert scale."""
    lines = [title] if title else []
    longest = max(len(p) for p in results)
    for perspective, stats in results.items():
        mean, std = stats["mean"], stats["std"]
        bar = "█" * max(1, int(round(width * (mean - 1.0) / 4.0)))
        lines.append(f"{perspective.ljust(longest)} |{bar} "
                     f"{mean:.2f}±{std:.2f}")
    return "\n".join(lines)
