"""Ranking accuracy metrics: HR@K, NDCG@K (paper §IV-A-3) and MRR@K.

All metrics take *ranked item lists* (highest score first) so they work
identically for the standalone baselines (full-catalog softmax ranking)
and for REKS (path-probability ranking over reached items).
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np


def top_k_from_scores(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the top-``k`` columns per row, highest score first.

    ``scores`` is ``(B, n)``; column 0 (padding) should already be
    masked to -inf by the caller when it is not a real item.
    """
    k = min(k, scores.shape[1])
    part = np.argpartition(-scores, kth=k - 1, axis=1)[:, :k]
    row_scores = np.take_along_axis(scores, part, axis=1)
    order = np.argsort(-row_scores, axis=1, kind="stable")
    return np.take_along_axis(part, order, axis=1)


def hit_rate_at_k(ranked: Sequence[Sequence[int]], targets: Sequence[int],
                  k: int) -> float:
    """Fraction of sessions whose target appears in the top-``k``."""
    hits = sum(1 for row, t in zip(ranked, targets) if t in list(row)[:k])
    return hits / max(1, len(targets))


def ndcg_at_k(ranked: Sequence[Sequence[int]], targets: Sequence[int],
              k: int) -> float:
    """NDCG@K with a single relevant item (so IDCG = 1)."""
    total = 0.0
    for row, t in zip(ranked, targets):
        row = list(row)[:k]
        if t in row:
            rank = row.index(t)
            total += float(1.0 / np.log2(rank + 2.0))
    return total / max(1, len(targets))


def mrr_at_k(ranked: Sequence[Sequence[int]], targets: Sequence[int],
             k: int) -> float:
    """Mean reciprocal rank, truncated at ``k`` (extension metric)."""
    total = 0.0
    for row, t in zip(ranked, targets):
        row = list(row)[:k]
        if t in row:
            total += 1.0 / (row.index(t) + 1.0)
    return total / max(1, len(targets))


def evaluate_rankings(ranked: Sequence[Sequence[int]], targets: Sequence[int],
                      ks: Iterable[int] = (5, 10, 20)) -> Dict[str, float]:
    """HR/NDCG/MRR at each cutoff, in percent (paper convention)."""
    out: Dict[str, float] = {}
    for k in ks:
        out[f"HR@{k}"] = 100.0 * hit_rate_at_k(ranked, targets, k)
        out[f"NDCG@{k}"] = 100.0 * ndcg_at_k(ranked, targets, k)
        out[f"MRR@{k}"] = 100.0 * mrr_at_k(ranked, targets, k)
    return out
