"""Evaluation: accuracy metrics, significance tests, and the user study."""

from repro.eval.metrics import (
    evaluate_rankings,
    hit_rate_at_k,
    mrr_at_k,
    ndcg_at_k,
    top_k_from_scores,
)
from repro.eval.significance import paired_t_test, significance_marker
from repro.eval.evaluator import evaluate_encoder, evaluate_reks
from repro.eval.user_study import UserStudyConfig, simulate_user_study

__all__ = [
    "evaluate_rankings",
    "hit_rate_at_k",
    "mrr_at_k",
    "ndcg_at_k",
    "top_k_from_scores",
    "paired_t_test",
    "significance_marker",
    "evaluate_encoder",
    "evaluate_reks",
    "UserStudyConfig",
    "simulate_user_study",
]
