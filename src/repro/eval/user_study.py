"""Simulated questionnaire study over generated explanations (Fig. 9).

The paper recruits 50 human subjects to rate 20 explanation cases on six
perspectives (satisfaction, effectiveness, transparency, persuasiveness,
unusability, difficulty-to-understand) on a 1–5 Likert scale.  Humans
are unavailable offline, so this module scores each case with
path-grounded proxy features and then simulates a panel of subjects with
individual leniency offsets and per-answer noise (see DESIGN.md §3).

The proxies are designed so that *better explanations score better*:
a case where every recommended item carries a valid on-KG path that is
relevant to the session (high ``σ(Pᵀ·Se)``) and short enough to read
gets high marks on the four positive questions and low marks on the two
reverse-coded ones — reproducing the qualitative shape of Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

PERSPECTIVES = (
    "Satisfaction",
    "Effectiveness",
    "Transparency",
    "Persuasiveness",
    "Unusability",
    "Difficult to understand",
)

POSITIVE = PERSPECTIVES[:4]
NEGATIVE = PERSPECTIVES[4:]


@dataclass
class UserStudyConfig:
    """Panel shape mirroring the paper's study."""

    n_subjects: int = 50
    n_cases: int = 20
    subject_leniency_std: float = 0.35
    answer_noise_std: float = 0.45
    seed: int = 2023


def case_quality_features(explanation) -> Dict[str, float]:
    """Path-grounded features in [0, 1] for one explanation case.

    ``explanation`` is a :class:`repro.core.explain.Explanation`.
    """
    recs = explanation.recommendations
    if not recs:
        return {"validity": 0.0, "relevance": 0.0, "readability": 0.0,
                "hit": 0.0}
    with_path = [r for r in recs if r.path is not None]
    validity = len(with_path) / len(recs)
    relevance = (float(np.mean([r.relevance for r in with_path]))
                 if with_path else 0.0)
    hops = [r.path.hops for r in with_path]
    readability = float(np.mean([1.0 if h <= 2 else 2.0 / h for h in hops])) if hops else 0.0
    hit = 1.0 if explanation.target in [r.item for r in recs] else 0.0
    return {"validity": validity, "relevance": relevance,
            "readability": readability, "hit": hit}


def _true_scores(features: Dict[str, float]) -> Dict[str, float]:
    """Map proxy features to latent 1-5 scores per perspective."""
    validity = features["validity"]
    relevance = features["relevance"]
    readability = features["readability"]
    hit = features["hit"]
    positive_base = 1.0 + 4.0 * (
        0.35 * validity + 0.35 * relevance + 0.15 * readability + 0.15 * hit
    )
    scores = {
        "Satisfaction": positive_base,
        "Effectiveness": 1.0 + 4.0 * (0.45 * relevance + 0.3 * hit + 0.25 * validity),
        "Transparency": 1.0 + 4.0 * (0.6 * validity + 0.4 * readability),
        "Persuasiveness": 1.0 + 4.0 * (0.55 * relevance + 0.45 * validity),
        # Reverse-coded: low is good.
        "Unusability": 6.0 - positive_base,
        "Difficult to understand": 6.0 - (1.0 + 4.0 * (0.7 * readability
                                                       + 0.3 * validity)),
    }
    return scores


def simulate_user_study(explanations: Sequence, config: UserStudyConfig = None
                        ) -> Dict[str, Dict[str, float]]:
    """Run the simulated panel; returns mean/std per perspective.

    Parameters
    ----------
    explanations:
        Explanation cases (typically 20 sampled test sessions).

    Returns
    -------
    dict
        ``{perspective: {"mean": m, "std": s}}`` on the 1-5 scale.
    """
    config = config or UserStudyConfig()
    rng = np.random.default_rng(config.seed)
    cases = list(explanations)[:config.n_cases]
    if not cases:
        raise ValueError("user study needs at least one explanation case")
    latent = [_true_scores(case_quality_features(e)) for e in cases]
    leniency = rng.normal(0.0, config.subject_leniency_std,
                          size=config.n_subjects)
    results: Dict[str, Dict[str, float]] = {}
    for perspective in PERSPECTIVES:
        answers = []
        for subject in range(config.n_subjects):
            # Lenient subjects shift positive questions up and
            # reverse-coded questions down, as real raters do.
            sign = 1.0 if perspective in POSITIVE else -1.0
            for case_scores in latent:
                raw = (case_scores[perspective] + sign * leniency[subject]
                       + rng.normal(0.0, config.answer_noise_std))
                answers.append(float(np.clip(np.round(raw), 1.0, 5.0)))
        answers_arr = np.asarray(answers)
        results[perspective] = {
            "mean": float(answers_arr.mean()),
            "std": float(answers_arr.std()),
        }
    return results
