"""TransE embeddings (Bordes et al., 2013) — Eq. 1 of the paper.

Margin-ranking loss with uniform negative sampling, optimized with
plain SGD and per-epoch entity renormalization, implemented directly in
numpy (no autograd needed: the gradients of the L2 energy are closed
form and the hot loop benefits from ``np.add.at`` scatter updates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.kg.graph import KnowledgeGraph


@dataclass
class TransEConfig:
    """Hyper-parameters for TransE pre-training."""

    dim: int = 64
    margin: float = 1.0
    lr: float = 0.01
    epochs: int = 10
    batch_size: int = 2048
    seed: int = 13


class TransE:
    """Learn entity/relation vectors such that ``h + r ≈ t``."""

    def __init__(self, num_entities: int, num_relations: int,
                 config: Optional[TransEConfig] = None) -> None:
        self.config = config or TransEConfig()
        rng = np.random.default_rng(self.config.seed)
        d = self.config.dim
        bound = 6.0 / np.sqrt(d)
        self.entity = rng.uniform(-bound, bound, size=(num_entities, d)).astype(np.float32)
        self.relation = rng.uniform(-bound, bound, size=(num_relations, d)).astype(np.float32)
        self.relation /= np.linalg.norm(self.relation, axis=1, keepdims=True) + 1e-12
        self._normalize_entities()
        self._rng = rng

    # ------------------------------------------------------------------
    def fit(self, kg: KnowledgeGraph, verbose: bool = False) -> "TransE":
        """Train on all triples of a finalized KG."""
        heads, rels, tails = kg.triples()
        return self.fit_triples(heads, rels, tails, verbose=verbose)

    def fit_triples(self, heads: np.ndarray, rels: np.ndarray,
                    tails: np.ndarray, verbose: bool = False) -> "TransE":
        cfg = self.config
        n = len(heads)
        if n == 0:
            return self
        for epoch in range(cfg.epochs):
            order = self._rng.permutation(n)
            total = 0.0
            for start in range(0, n, cfg.batch_size):
                idx = order[start:start + cfg.batch_size]
                total += self._step(heads[idx], rels[idx], tails[idx])
            self._normalize_entities()
            if verbose:
                print(f"[transe] epoch {epoch + 1}/{cfg.epochs} "
                      f"loss={total / max(1, n):.4f}")
        return self

    # ------------------------------------------------------------------
    def _step(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> float:
        cfg = self.config
        batch = len(h)
        # Corrupt head or tail uniformly.
        corrupt_head = self._rng.random(batch) < 0.5
        negatives = self._rng.integers(0, self.entity.shape[0], size=batch)
        nh = np.where(corrupt_head, negatives, h)
        nt = np.where(corrupt_head, t, negatives)

        he, re, te = self.entity[h], self.relation[r], self.entity[t]
        nhe, nte = self.entity[nh], self.entity[nt]

        pos_diff = he + re - te
        neg_diff = nhe + re - nte
        pos_score = (pos_diff ** 2).sum(axis=1)
        neg_score = (neg_diff ** 2).sum(axis=1)
        violation = cfg.margin + pos_score - neg_score
        active = violation > 0
        if not active.any():
            return 0.0
        loss = float(violation[active].sum())

        # d(loss)/d(pos_diff) = 2 * pos_diff; d(loss)/d(neg_diff) = -2 * neg_diff
        gp = 2.0 * pos_diff[active]
        gn = -2.0 * neg_diff[active]
        scale = cfg.lr

        np.add.at(self.entity, h[active], -scale * gp)
        np.add.at(self.entity, t[active], scale * gp)
        np.add.at(self.relation, r[active], -scale * (gp + gn))
        np.add.at(self.entity, nh[active], -scale * gn)
        np.add.at(self.entity, nt[active], scale * gn)
        return loss

    def _normalize_entities(self) -> None:
        norms = np.linalg.norm(self.entity, axis=1, keepdims=True)
        self.entity /= np.maximum(norms, 1e-12)

    # ------------------------------------------------------------------
    def energy(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        """L2 energy of triples (lower = more plausible)."""
        diff = self.entity[h] + self.relation[r] - self.entity[t]
        return (diff ** 2).sum(axis=1)

    def embedding_tables(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(entity_matrix, relation_matrix)`` copies."""
        return self.entity.copy(), self.relation.copy()

    def item_embeddings(self, item_entity: np.ndarray) -> np.ndarray:
        """Rows for item ids 1..n plus a zero row for padding index 0.

        ``item_entity`` is the BuiltKG mapping (index 0 is -1/unused).
        """
        dim = self.entity.shape[1]
        table = np.zeros((len(item_entity), dim), dtype=np.float32)
        table[1:] = self.entity[item_entity[1:]]
        return table

    def link_prediction_metrics(self, kg: KnowledgeGraph,
                                sample_size: int = 200,
                                seed: int = 0) -> dict:
        """Tail-prediction quality of the embedding (hits@k / MRR).

        For a sample of triples ``(h, r, ?)``, ranks every entity by
        the TransE energy and reports where the true tail lands — the
        standard diagnostic for Eq.-1 pre-training quality.  Raw (not
        filtered) ranks; small KGs only (scores all entities).
        """
        heads, rels, tails = kg.triples()
        rng = np.random.default_rng(seed)
        n = len(heads)
        if n == 0:
            return {"hits@1": 0.0, "hits@10": 0.0, "mrr": 0.0,
                    "mean_rank": 0.0}
        picks = rng.choice(n, size=min(sample_size, n), replace=False)
        ranks = np.empty(len(picks), dtype=np.int64)
        for i, idx in enumerate(picks):
            translated = self.entity[heads[idx]] + self.relation[rels[idx]]
            energies = ((self.entity - translated) ** 2).sum(axis=1)
            ranks[i] = int((energies < energies[tails[idx]]).sum()) + 1
        return {
            "hits@1": float((ranks <= 1).mean()),
            "hits@10": float((ranks <= 10).mean()),
            "mrr": float((1.0 / ranks).mean()),
            "mean_rank": float(ranks.mean()),
        }
