"""Typed knowledge-graph store with CSR adjacency.

Entities are globally numbered; each entity type owns a contiguous id
range so type membership is an O(1) range check.  Triples are finalized
into a CSR layout (offsets + relation/tail arrays sorted by head) so the
REKS environment can fetch an entity's outgoing action space as two
numpy slices without any Python-level iteration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class KnowledgeGraph:
    """A directed multigraph ``(head, relation, tail)`` with typed entities."""

    def __init__(self) -> None:
        self.entity_type_names: List[str] = []
        self._type_ranges: Dict[str, Tuple[int, int]] = {}  # name -> (start, count)
        self.relation_names: List[str] = []
        self._relation_ids: Dict[str, int] = {}
        self.num_entities = 0
        self._heads: List[np.ndarray] = []
        self._rels: List[np.ndarray] = []
        self._tails: List[np.ndarray] = []
        self._finalized = False
        self._offsets: Optional[np.ndarray] = None
        self._adj_rels: Optional[np.ndarray] = None
        self._adj_tails: Optional[np.ndarray] = None
        self.entity_names: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # Schema construction
    # ------------------------------------------------------------------
    def add_entity_type(self, name: str, count: int) -> Tuple[int, int]:
        """Register ``count`` entities of a new type; returns (start, count)."""
        if self._finalized:
            raise RuntimeError("cannot add entity types after finalize()")
        if name in self._type_ranges:
            raise ValueError(f"entity type {name!r} already registered")
        start = self.num_entities
        self._type_ranges[name] = (start, count)
        self.entity_type_names.append(name)
        self.num_entities += count
        return start, count

    def add_relation(self, name: str) -> int:
        """Register (or fetch) a relation id by name."""
        if name not in self._relation_ids:
            self._relation_ids[name] = len(self.relation_names)
            self.relation_names.append(name)
        return self._relation_ids[name]

    def relation_id(self, name: str) -> int:
        return self._relation_ids[name]

    @property
    def num_relations(self) -> int:
        return len(self.relation_names)

    # ------------------------------------------------------------------
    # Entity id helpers
    # ------------------------------------------------------------------
    def entity_id(self, type_name: str, local_id: int) -> int:
        start, count = self._type_ranges[type_name]
        if not 0 <= local_id < count:
            raise IndexError(
                f"{type_name} local id {local_id} out of range [0, {count})"
            )
        return start + local_id

    def local_id(self, entity: int) -> Tuple[str, int]:
        """Inverse of :meth:`entity_id`."""
        for name, (start, count) in self._type_ranges.items():
            if start <= entity < start + count:
                return name, entity - start
        raise IndexError(f"entity {entity} out of range")

    def entity_type(self, entity: int) -> str:
        return self.local_id(entity)[0]

    def type_range(self, type_name: str) -> Tuple[int, int]:
        return self._type_ranges[type_name]

    def is_type(self, entity, type_name: str):
        """Vectorized type check (works on scalars and arrays)."""
        start, count = self._type_ranges[type_name]
        entity = np.asarray(entity)
        return (entity >= start) & (entity < start + count)

    def count_entities_of_type(self, type_name: str) -> int:
        return self._type_ranges[type_name][1]

    def entity_name(self, entity: int) -> str:
        if entity in self.entity_names:
            return self.entity_names[entity]
        type_name, local = self.local_id(entity)
        return f"{type_name}:{local}"

    # ------------------------------------------------------------------
    # Triples
    # ------------------------------------------------------------------
    def add_triples(self, heads: Sequence[int], relation: int,
                    tails: Sequence[int]) -> None:
        """Append a block of triples sharing one relation id."""
        if self._finalized:
            raise RuntimeError("cannot add triples after finalize()")
        heads = np.asarray(heads, dtype=np.int64)
        tails = np.asarray(tails, dtype=np.int64)
        if heads.shape != tails.shape:
            raise ValueError("heads and tails must have matching shapes")
        if heads.size == 0:
            return
        if heads.min() < 0 or heads.max() >= self.num_entities:
            raise IndexError("head entity id out of range")
        if tails.min() < 0 or tails.max() >= self.num_entities:
            raise IndexError("tail entity id out of range")
        self._heads.append(heads)
        self._rels.append(np.full(heads.shape, relation, dtype=np.int64))
        self._tails.append(tails)

    def finalize(self, dedupe: bool = True) -> None:
        """Freeze the triple set and build CSR adjacency."""
        if self._finalized:
            return
        if self._heads:
            heads = np.concatenate(self._heads)
            rels = np.concatenate(self._rels)
            tails = np.concatenate(self._tails)
        else:
            heads = rels = tails = np.zeros(0, dtype=np.int64)
        if dedupe and heads.size:
            combined = np.stack([heads, rels, tails], axis=1)
            combined = np.unique(combined, axis=0)
            heads, rels, tails = combined[:, 0], combined[:, 1], combined[:, 2]
        order = np.argsort(heads, kind="stable")
        heads, rels, tails = heads[order], rels[order], tails[order]
        counts = np.bincount(heads, minlength=self.num_entities)
        self._offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        self._adj_rels = rels
        self._adj_tails = tails
        self._heads_flat = heads
        self._finalized = True

    @property
    def num_triples(self) -> int:
        self._require_finalized()
        return int(self._adj_tails.shape[0])

    def triples(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All (head, relation, tail) arrays; finalize() first."""
        self._require_finalized()
        return self._heads_flat, self._adj_rels, self._adj_tails

    def adjacency_csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(offsets, rels, tails)`` — the finalized CSR arrays.

        Views of the internal adjacency (no copy): entity ``e``'s
        outgoing edges are ``rels[offsets[e]:offsets[e + 1]]`` /
        ``tails[offsets[e]:offsets[e + 1]]``, in finalize order.
        """
        self._require_finalized()
        return self._offsets, self._adj_rels, self._adj_tails

    def neighbors(self, entity: int) -> Tuple[np.ndarray, np.ndarray]:
        """Outgoing ``(relations, tails)`` of ``entity`` (views, no copy)."""
        self._require_finalized()
        start, stop = self._offsets[entity], self._offsets[entity + 1]
        return self._adj_rels[start:stop], self._adj_tails[start:stop]

    def out_degree(self, entity: int) -> int:
        self._require_finalized()
        return int(self._offsets[entity + 1] - self._offsets[entity])

    def count_edges_for_relation(self, relation: int) -> int:
        self._require_finalized()
        return int((self._adj_rels == relation).sum())

    def has_edge(self, head: int, relation: int, tail: int) -> bool:
        rels, tails = self.neighbors(head)
        return bool(((rels == relation) & (tails == tail)).any())

    def _require_finalized(self) -> None:
        if not self._finalized:
            raise RuntimeError("call finalize() before querying the graph")

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        triples = self.num_triples if self._finalized else sum(
            h.size for h in self._heads)
        return (f"KnowledgeGraph(entities={self.num_entities}, "
                f"relations={self.num_relations}, triples={triples})")
