"""Knowledge-graph diagnostics (networkx-backed).

Tools for sanity-checking a built KG before training: connectivity,
degree profiles per entity type, hub detection, and relation-pattern
mining over generated explanation paths.  Used by the extension
benchmarks and handy when tuning synthetic generators.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.paths import SemanticPath


def to_networkx(kg: KnowledgeGraph) -> nx.MultiDiGraph:
    """Materialize the KG as a networkx multigraph (small KGs only)."""
    graph = nx.MultiDiGraph()
    graph.add_nodes_from(range(kg.num_entities))
    heads, rels, tails = kg.triples()
    for h, r, t in zip(heads.tolist(), rels.tolist(), tails.tolist()):
        graph.add_edge(h, t, relation=kg.relation_names[r])
    return graph


def connectivity_report(kg: KnowledgeGraph) -> Dict[str, object]:
    """Weak-connectivity summary: components, isolated entities."""
    graph = to_networkx(kg)
    undirected = graph.to_undirected()
    components = sorted(
        (len(c) for c in nx.connected_components(undirected)), reverse=True)
    isolated = [n for n in graph.nodes if graph.degree(n) == 0]
    return {
        "num_components": len(components),
        "largest_component": components[0] if components else 0,
        "largest_fraction": (components[0] / kg.num_entities
                             if components else 0.0),
        "isolated_entities": len(isolated),
    }


def degree_profile(kg: KnowledgeGraph) -> Dict[str, Dict[str, float]]:
    """Per-entity-type out-degree statistics."""
    profile: Dict[str, Dict[str, float]] = {}
    for type_name in kg.entity_type_names:
        start, count = kg.type_range(type_name)
        degrees = np.array([kg.out_degree(e)
                            for e in range(start, start + count)])
        profile[type_name] = {
            "count": int(count),
            "mean_degree": float(degrees.mean()) if count else 0.0,
            "max_degree": int(degrees.max()) if count else 0,
            "zero_degree": int((degrees == 0).sum()),
        }
    return profile


def find_hubs(kg: KnowledgeGraph, top: int = 10) -> List[Tuple[int, str, int]]:
    """Entities with the largest out-degree: ``(entity, type, degree)``.

    Hubs matter for REKS because the action-space cap subsamples their
    edges; a KG dominated by a few mega-hubs walks poorly.
    """
    degrees = [(e, kg.entity_type(e), kg.out_degree(e))
               for e in range(kg.num_entities)]
    degrees.sort(key=lambda x: -x[2])
    return degrees[:top]


def reachable_within(kg: KnowledgeGraph, source: int, hops: int) -> set:
    """Entities reachable from ``source`` in at most ``hops`` hops."""
    frontier = {source}
    seen = {source}
    for _ in range(hops):
        nxt = set()
        for entity in frontier:
            _, tails = kg.neighbors(entity)
            nxt.update(int(t) for t in tails)
        frontier = nxt - seen
        seen |= nxt
    return seen


def two_hop_target_reachability(built, sessions: Sequence,
                                max_sessions: int = 200) -> float:
    """Fraction of sessions whose target is 2-hop reachable from the
    last prefix item — an upper bound on REKS's HR at path length 2."""
    hits = 0
    total = 0
    for session in list(sessions)[:max_sessions]:
        if len(session.items) < 2:
            continue
        start = int(built.item_entity[session.items[-2]])
        target = int(built.item_entity[session.items[-1]])
        total += 1
        if target in reachable_within(built.kg, start, hops=2):
            hits += 1
    return hits / max(total, 1)


def pattern_statistics(paths: Sequence[SemanticPath],
                       kg: KnowledgeGraph) -> Dict[Tuple[str, ...], int]:
    """Count relation patterns over explanation paths (Fig. 10 flavor:
    how often do brand paths vs co-purchase paths explain items?)."""
    counts: Counter = Counter()
    for path in paths:
        counts[path.pattern(kg)] += 1
    return dict(counts)
