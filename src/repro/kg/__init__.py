"""Knowledge-graph substrate: typed graph store, builders, TransE, paths."""

from repro.kg.graph import KnowledgeGraph
from repro.kg.builder import build_amazon_kg, build_movielens_kg, build_kg
from repro.kg.transe import TransE, TransEConfig
from repro.kg.paths import SemanticPath, render_path

__all__ = [
    "KnowledgeGraph",
    "build_amazon_kg",
    "build_movielens_kg",
    "build_kg",
    "TransE",
    "TransEConfig",
    "SemanticPath",
    "render_path",
]
