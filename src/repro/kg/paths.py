"""Semantic path datatypes and rendering (paper §III-A, §IV-C)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.kg.graph import KnowledgeGraph


@dataclass
class SemanticPath:
    """A KG path ``e0 -r1-> e1 -r2-> ... -rh-> eh`` with its probability.

    ``prob`` is the product of per-step policy probabilities (the beam
    score); ``reward`` is the composite RL reward when computed.
    """

    entities: List[int]
    relations: List[int]
    prob: float = 0.0
    reward: Optional[float] = None

    def __post_init__(self) -> None:
        if len(self.entities) != len(self.relations) + 1:
            raise ValueError(
                f"path with {len(self.entities)} entities needs "
                f"{len(self.entities) - 1} relations, got {len(self.relations)}"
            )

    @property
    def terminal(self) -> int:
        return self.entities[-1]

    @property
    def hops(self) -> int:
        return len(self.relations)

    def pattern(self, kg: KnowledgeGraph) -> Tuple[str, ...]:
        """The relation-name signature, e.g. ('belong_to', 'belong_to')."""
        return tuple(kg.relation_names[r] for r in self.relations)

    def is_simple(self) -> bool:
        """True when no entity repeats (the MDP's visited-set invariant)."""
        return len(set(self.entities)) == len(self.entities)

    def render(self, kg: KnowledgeGraph) -> str:
        return render_path(self, kg)


def render_path(path: SemanticPath, kg: KnowledgeGraph) -> str:
    """Human-readable arrow form used in the case studies (Fig. 10)."""
    parts = [kg.entity_name(path.entities[0])]
    for rel, ent in zip(path.relations, path.entities[1:]):
        parts.append(f"--{kg.relation_names[rel]}-->")
        parts.append(kg.entity_name(ent))
    return " ".join(parts)


def path_diversity(paths: List[SemanticPath], kg: KnowledgeGraph) -> float:
    """Fraction of distinct relation patterns among ``paths`` (extension)."""
    if not paths:
        return 0.0
    patterns = {p.pattern(kg) for p in paths}
    return len(patterns) / len(paths)


def mean_path_embedding(entity_table: np.ndarray, relation_table: np.ndarray,
                        path: SemanticPath) -> np.ndarray:
    """``P = mean(x_e0, x_r1, ..., x_rT, x_eT)`` (Eq. 9)."""
    rows = [entity_table[path.entities[0]]]
    for rel, ent in zip(path.relations, path.entities[1:]):
        rows.append(relation_table[rel])
        rows.append(entity_table[ent])
    return np.mean(rows, axis=0)
