"""Construct the session knowledge graph from a dataset (paper §III-B-1).

Conventions reproduced from the paper:

* metadata relations get a **bidirectional** edge pair (one edge per
  direction, same relation name), e.g. ``product -belong_to-> category``
  and ``category -belong_to-> product``;
* ``purchase`` (user -> product) is likewise bidirectional, which is what
  lets 2-hop paths of the form ``product -> user -> product`` appear in
  the Figure-10 case studies;
* ``co_occur`` is **directed**: for consecutive items ``v_i, v_{i+1}`` in
  a *training* session the edge ``v_i -co_occur-> v_{i+1}`` is added —
  validation/test session behavior never leaks into the KG;
* the Amazon KG can be built without user entities (Table IX ablation),
  and the MovieLens KG never has them (Table V).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.data.schema import AmazonDataset, MovieLensDataset, SessionDataset
from repro.kg.graph import KnowledgeGraph


@dataclass
class BuiltKG:
    """A finalized KG plus the item/user <-> entity id mappings."""

    kg: KnowledgeGraph
    item_entity: np.ndarray      # (n_items + 1,) item id -> entity id (-1 pad)
    entity_item: np.ndarray      # (n_entities,) entity id -> item id (0 if none)
    user_entity: Optional[np.ndarray] = None  # (n_users,) or None
    include_users: bool = True

    def entities_of_items(self, items: np.ndarray) -> np.ndarray:
        return self.item_entity[np.asarray(items, dtype=np.int64)]

    def items_of_entities(self, entities: np.ndarray) -> np.ndarray:
        return self.entity_item[np.asarray(entities, dtype=np.int64)]

    def adjacency_csr(self) -> tuple:
        """``(indptr, rels, tails)`` CSR view of the finalized adjacency.

        ``indptr`` has ``num_entities + 1`` offsets; entity ``e``'s
        outgoing edges are ``rels[indptr[e]:indptr[e + 1]]`` /
        ``tails[indptr[e]:indptr[e + 1]]``.  This is the layout the
        REKS environment consumes directly — edges are sorted by head
        (the graph's finalize order), so within-entity edge order
        matches :meth:`KnowledgeGraph.neighbors`.
        """
        return self.kg.adjacency_csr()

    @property
    def n_items(self) -> int:
        return len(self.item_entity) - 1


def build_kg(dataset: SessionDataset, include_users: bool = True) -> BuiltKG:
    """Dispatch on the dataset domain."""
    if dataset.domain == "amazon":
        return build_amazon_kg(dataset, include_users=include_users)
    if dataset.domain == "movielens":
        return build_movielens_kg(dataset)
    raise ValueError(f"unknown dataset domain {dataset.domain!r}")


def build_amazon_kg(dataset: AmazonDataset, include_users: bool = True) -> BuiltKG:
    """Amazon KG with the Table II relation inventory."""
    kg = KnowledgeGraph()
    product_start, _ = kg.add_entity_type("product", dataset.n_items)
    brand_start, _ = kg.add_entity_type("brand", dataset.n_brands)
    category_start, _ = kg.add_entity_type("category", dataset.n_categories)
    related_start, _ = kg.add_entity_type("related_product", dataset.n_related)
    user_start = None
    if include_users:
        user_start, _ = kg.add_entity_type("user", dataset.n_users)

    produced_by = kg.add_relation("produced_by")
    belong_to = kg.add_relation("belong_to")
    also_bought = kg.add_relation("also_bought")
    also_viewed = kg.add_relation("also_viewed")
    bought_together = kg.add_relation("bought_together")
    co_occur = kg.add_relation("co_occur")
    purchase = kg.add_relation("purchase") if include_users else None

    def product_entity(item: int) -> int:
        return product_start + item - 1

    heads: Dict[int, List[int]] = {}

    for item, meta in dataset.products.items():
        p = product_entity(item)
        _add_bidirectional(kg, produced_by, [p], [brand_start + meta.brand_id])
        _add_bidirectional(kg, belong_to, [p], [category_start + meta.category_id])
        for rel, targets in ((also_bought, meta.also_bought),
                             (also_viewed, meta.also_viewed),
                             (bought_together, meta.bought_together)):
            if targets:
                tails = [related_start + r for r in targets]
                _add_bidirectional(kg, rel, [p] * len(tails), tails)

    # Session-derived edges use only the training split.
    co_heads: List[int] = []
    co_tails: List[int] = []
    purchase_users: List[int] = []
    purchase_items: List[int] = []
    for session in dataset.split.train:
        for src, dst in zip(session.items[:-1], session.items[1:]):
            if src != dst:
                co_heads.append(product_entity(src))
                co_tails.append(product_entity(dst))
        if include_users:
            for item in session.items:
                purchase_users.append(user_start + session.user_id)
                purchase_items.append(product_entity(item))
    kg.add_triples(co_heads, co_occur, co_tails)
    if include_users and purchase_users:
        _add_bidirectional(kg, purchase, purchase_users, purchase_items)

    kg.finalize()
    _name_amazon_entities(kg, dataset, product_start, brand_start,
                          category_start, related_start, user_start)
    return _finish(kg, dataset, product_start, user_start, include_users)


def build_movielens_kg(dataset: MovieLensDataset) -> BuiltKG:
    """MovieLens KG with the Table IV relation inventory (no users)."""
    kg = KnowledgeGraph()
    movie_start, _ = kg.add_entity_type("movie", dataset.n_items)
    genre_start, _ = kg.add_entity_type("genre", dataset.n_genres)
    director_start, _ = kg.add_entity_type("director", dataset.n_directors)
    actor_start, _ = kg.add_entity_type("actor", dataset.n_actors)
    writer_start, _ = kg.add_entity_type("writer", dataset.n_writers)
    language_start, _ = kg.add_entity_type("language", dataset.n_languages)
    rating_start, _ = kg.add_entity_type("rating", dataset.n_ratings)
    country_start, _ = kg.add_entity_type("country", dataset.n_countries)

    belong_to = kg.add_relation("belong_to")
    directed_by = kg.add_relation("directed_by")
    acted_by = kg.add_relation("acted_by")
    written_by = kg.add_relation("written_by")
    narrated_by = kg.add_relation("narrated_by")
    rated = kg.add_relation("rated")
    produced_by = kg.add_relation("produced_by")
    co_occur = kg.add_relation("co_occur")

    def movie_entity(item: int) -> int:
        return movie_start + item - 1

    for item, meta in dataset.movies.items():
        m = movie_entity(item)
        if meta.genre_ids:
            tails = [genre_start + g for g in meta.genre_ids]
            _add_bidirectional(kg, belong_to, [m] * len(tails), tails)
        if meta.director_id is not None:
            _add_bidirectional(kg, directed_by, [m], [director_start + meta.director_id])
        if meta.actor_ids:
            tails = [actor_start + a for a in meta.actor_ids]
            _add_bidirectional(kg, acted_by, [m] * len(tails), tails)
        if meta.writer_id is not None:
            _add_bidirectional(kg, written_by, [m], [writer_start + meta.writer_id])
        if meta.language_id is not None:
            _add_bidirectional(kg, narrated_by, [m], [language_start + meta.language_id])
        if meta.rating_id is not None:
            _add_bidirectional(kg, rated, [m], [rating_start + meta.rating_id])
        if meta.country_id is not None:
            _add_bidirectional(kg, produced_by, [m], [country_start + meta.country_id])

    co_heads: List[int] = []
    co_tails: List[int] = []
    for session in dataset.split.train:
        for src, dst in zip(session.items[:-1], session.items[1:]):
            if src != dst:
                co_heads.append(movie_entity(src))
                co_tails.append(movie_entity(dst))
    kg.add_triples(co_heads, co_occur, co_tails)

    kg.finalize()
    for item, name in dataset.item_names.items():
        kg.entity_names[movie_entity(item)] = name
    return _finish(kg, dataset, movie_start, None, include_users=False)


# ----------------------------------------------------------------------
def _add_bidirectional(kg: KnowledgeGraph, relation: int,
                       heads: List[int], tails: List[int]) -> None:
    kg.add_triples(heads, relation, tails)
    kg.add_triples(tails, relation, heads)


def _finish(kg: KnowledgeGraph, dataset: SessionDataset, item_type_start: int,
            user_start: Optional[int], include_users: bool) -> BuiltKG:
    item_entity = np.full(dataset.n_items + 1, -1, dtype=np.int64)
    item_entity[1:] = item_type_start + np.arange(dataset.n_items)
    entity_item = np.zeros(kg.num_entities, dtype=np.int64)
    entity_item[item_entity[1:]] = np.arange(1, dataset.n_items + 1)
    user_entity = None
    if include_users and user_start is not None:
        user_entity = user_start + np.arange(dataset.n_users, dtype=np.int64)
    return BuiltKG(kg=kg, item_entity=item_entity, entity_item=entity_item,
                   user_entity=user_entity, include_users=include_users)


def _name_amazon_entities(kg: KnowledgeGraph, dataset: AmazonDataset,
                          product_start: int, brand_start: int,
                          category_start: int, related_start: int,
                          user_start: Optional[int]) -> None:
    for item, name in dataset.item_names.items():
        kg.entity_names[product_start + item - 1] = name
    for brand, name in dataset.brand_names.items():
        kg.entity_names[brand_start + brand] = name
    for cat, name in dataset.category_names.items():
        kg.entity_names[category_start + cat] = name
