"""Checkpoint serialization for models and trainers.

State dictionaries (dotted-name -> numpy array) are stored in ``.npz``
archives together with a JSON header describing what produced them, so
a checkpoint can be validated before loading.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional

import numpy as np

HEADER_KEY = "__repro_header__"
FORMAT_VERSION = 1


def save_state_dict(path, state: Dict[str, np.ndarray],
                    meta: Optional[dict] = None) -> Path:
    """Write a state dict (plus a metadata header) to ``path``."""
    path = Path(path)
    header = {"format_version": FORMAT_VERSION, "meta": meta or {},
              "keys": sorted(state)}
    payload = dict(state)
    payload[HEADER_KEY] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as handle:
        np.savez(handle, **payload)
    return path


def load_state_dict(path, expected_meta: Optional[dict] = None
                    ) -> Dict[str, np.ndarray]:
    """Read a state dict; optionally validate header metadata.

    ``expected_meta`` entries must match the stored header exactly —
    loading a GRU4REC checkpoint into a NARM model fails fast instead
    of at the first shape mismatch.
    """
    path = Path(path)
    with np.load(path) as archive:
        if HEADER_KEY not in archive:
            raise ValueError(f"{path} is not a repro checkpoint")
        header = json.loads(bytes(archive[HEADER_KEY]).decode("utf-8"))
        if header.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"checkpoint format {header.get('format_version')} "
                f"unsupported (expected {FORMAT_VERSION})")
        if expected_meta:
            stored = header.get("meta", {})
            for key, value in expected_meta.items():
                if stored.get(key) != value:
                    raise ValueError(
                        f"checkpoint mismatch for {key!r}: stored "
                        f"{stored.get(key)!r}, expected {value!r}")
        return {key: archive[key] for key in archive.files
                if key != HEADER_KEY}


def save_module(path, module, **meta) -> Path:
    """Save any :class:`repro.nn.Module`'s parameters."""
    return save_state_dict(path, module.state_dict(), meta=meta)


def load_module(path, module, **expected_meta) -> None:
    """Load parameters saved by :func:`save_module` into ``module``."""
    module.load_state_dict(load_state_dict(path, expected_meta or None))
