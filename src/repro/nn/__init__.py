"""Neural-network layers built on :mod:`repro.autograd`.

The layer inventory is exactly what the five session-based recommenders
and the REKS policy network need: linear/MLP, embeddings, GRUs, additive
and multi-head attention, transformer encoders, layer normalization,
dropout, and the gated graph convolution used by SR-GNN and GCSAN.
"""

from repro.nn.module import Module, Parameter, Sequential, ModuleList
from repro.nn.linear import Linear, MLP
from repro.nn.embedding import Embedding
from repro.nn.rnn import GRUCell, GRU
from repro.nn.norm import LayerNorm
from repro.nn.dropout import Dropout
from repro.nn.attention import (
    AdditiveAttention,
    MultiHeadAttention,
    scaled_dot_product_attention,
)
from repro.nn.transformer import (
    LearnedPositionalEmbedding,
    TransformerEncoder,
    TransformerEncoderLayer,
)
from repro.nn.graph import GatedGraphConv

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "Linear",
    "MLP",
    "Embedding",
    "GRUCell",
    "GRU",
    "LayerNorm",
    "Dropout",
    "AdditiveAttention",
    "MultiHeadAttention",
    "scaled_dot_product_attention",
    "LearnedPositionalEmbedding",
    "TransformerEncoder",
    "TransformerEncoderLayer",
    "GatedGraphConv",
]
