"""Embedding table with scatter-add backward."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import init
from repro.autograd.functional import coerce_indices  # noqa: F401 (re-export)
from repro.autograd.tensor import Tensor, is_grad_enabled
from repro.nn.module import Module, Parameter


class Embedding(Module):
    """Dense lookup table ``(num_embeddings, dim)``.

    ``padding_idx`` rows are zeroed at construction and re-zeroed after
    every lookup's backward via gradient masking is unnecessary: the
    optimizer may update them, so callers that rely on a true zero pad
    should call :meth:`zero_padding` after optimizer steps (the session
    batcher in this project masks padded positions explicitly instead).
    """

    def __init__(self, num_embeddings: int, dim: int,
                 padding_idx: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None,
                 std: float = 0.05) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.padding_idx = padding_idx
        self.weight = Parameter(init.normal((num_embeddings, dim), rng, std=std))
        if padding_idx is not None:
            self.weight.data[padding_idx] = 0.0

    def forward(self, indices: np.ndarray) -> Tensor:
        # Detach (copy) only when a backward closure will retain the
        # indices; inference gathers read workspace views in place.
        indices = coerce_indices(
            indices, detach=self.weight.requires_grad and is_grad_enabled())
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings})"
            )
        return self.weight[indices]

    def zero_padding(self) -> None:
        if self.padding_idx is not None:
            self.weight.data[self.padding_idx] = 0.0

    @classmethod
    def from_pretrained(cls, weights: np.ndarray, trainable: bool = True,
                        padding_idx: Optional[int] = None,
                        copy: bool = True) -> "Embedding":
        """Build a table from an existing matrix (e.g. TransE output).

        ``copy=False`` wraps ``weights`` **zero-copy** — the table's
        parameter aliases the given float32 buffer.  That is how
        process workers mount the frozen TransE tables exported to the
        shared-memory plane by :mod:`repro.runtime`: every worker reads
        the same physical pages.  It requires ``trainable=False`` and
        no ``padding_idx`` (both would write the foreign buffer).

        Frozen tables (``trainable=False``) come back with a
        **read-only** payload either way, so agent clones can share
        them safely: checkpoint loads go through the copy-on-write
        path in :meth:`repro.nn.module.Module.load_state_dict`, and
        in-place mutators must call
        :meth:`repro.autograd.tensor.Tensor.ensure_writable` first —
        either way nothing silently mutates a buffer another agent is
        reading.
        """
        if not copy:
            if trainable or padding_idx is not None:
                raise ValueError(
                    "from_pretrained(copy=False) shares the caller's "
                    "buffer; it requires trainable=False and no "
                    "padding_idx")
            data = np.asarray(weights)
            if data.dtype != np.float32 or data.ndim != 2:
                raise ValueError(
                    "from_pretrained(copy=False) needs a 2-D float32 "
                    f"array, got {data.dtype} {data.shape}")
            if data.flags.writeable:
                data = data.view()
                data.flags.writeable = False
            table = cls.__new__(cls)
            Module.__init__(table)
            table.num_embeddings, table.dim = data.shape
            table.padding_idx = None
            weight = Parameter(data)
            weight.requires_grad = False
            table.weight = weight
            return table
        table = cls(weights.shape[0], weights.shape[1], padding_idx=padding_idx,
                    rng=np.random.default_rng(0))
        table.weight.data[...] = weights.astype(table.weight.data.dtype)
        table.weight.requires_grad = trainable
        if not trainable and padding_idx is None:
            # Freeze the payload so clones can alias it (COW on write).
            table.weight.data.flags.writeable = False
        return table
