"""Gated graph convolution (Li et al. 2015), the SR-GNN/GCSAN substrate.

SR-GNN builds, per session, a directed graph over the distinct items and
propagates information along normalized in/out adjacency matrices before
a GRU-style node update.  This module implements exactly that batched
propagation step.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd import init
from repro.autograd.tensor import Tensor
from repro.nn.linear import Linear
from repro.nn.module import Module, Parameter


class GatedGraphConv(Module):
    """``num_steps`` rounds of gated message passing over session graphs."""

    def __init__(self, dim: int, num_steps: int = 1,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.dim = dim
        self.num_steps = num_steps
        self.in_proj = Linear(dim, dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)
        # GRU-style update operating on the 2*dim message vector.
        self.weight_ih = Parameter(init.xavier_uniform((3 * dim, 2 * dim), rng))
        self.weight_hh = Parameter(init.xavier_uniform((3 * dim, dim), rng))
        self.bias_ih = Parameter(init.zeros((3 * dim,)))
        self.bias_hh = Parameter(init.zeros((3 * dim,)))

    def forward(self, hidden: Tensor, adj_in: np.ndarray, adj_out: np.ndarray) -> Tensor:
        """Propagate over node states ``hidden (B, n, d)``.

        ``adj_in``/``adj_out`` are ``(B, n, n)`` row-normalized adjacency
        matrices (incoming and outgoing edges respectively).
        """
        dim = self.dim
        a_in_t = Tensor(np.asarray(adj_in, dtype=np.float32))
        a_out_t = Tensor(np.asarray(adj_out, dtype=np.float32))
        for _ in range(self.num_steps):
            msg_in = a_in_t.matmul(self.in_proj(hidden))
            msg_out = a_out_t.matmul(self.out_proj(hidden))
            a = F.concat([msg_in, msg_out], axis=-1)
            gi = a.matmul(self.weight_ih.transpose()) + self.bias_ih
            gh = hidden.matmul(self.weight_hh.transpose()) + self.bias_hh
            i_r, i_z, i_n = gi[:, :, :dim], gi[:, :, dim:2 * dim], gi[:, :, 2 * dim:]
            h_r, h_z, h_n = gh[:, :, :dim], gh[:, :, dim:2 * dim], gh[:, :, 2 * dim:]
            reset = (i_r + h_r).sigmoid()
            update = (i_z + h_z).sigmoid()
            candidate = (i_n + reset * h_n).tanh()
            hidden = (1.0 - update) * candidate + update * hidden
        return hidden


def build_session_graph(items: np.ndarray) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Build the SR-GNN session graph for one padded item sequence.

    Parameters
    ----------
    items:
        1-D integer array of item ids (0 = padding), in interaction order.

    Returns
    -------
    nodes:
        Distinct item ids in first-appearance order.
    adj_in, adj_out:
        Row-normalized ``(n, n)`` adjacency matrices.
    alias:
        For each (real) sequence position, the index into ``nodes``.
    """
    real = items[items != 0]
    nodes, first_index = np.unique(real, return_index=True)
    # Preserve first-appearance order rather than sorted id order.
    nodes = real[np.sort(first_index)]
    index = {item: i for i, item in enumerate(nodes.tolist())}
    n = len(nodes)
    adj = np.zeros((n, n), dtype=np.float32)
    for src, dst in zip(real[:-1], real[1:]):
        adj[index[src], index[dst]] = 1.0
    in_deg = adj.sum(axis=0, keepdims=True)
    out_deg = adj.sum(axis=1, keepdims=True)
    adj_in = adj.T / np.maximum(in_deg.T, 1.0)
    adj_out = adj / np.maximum(out_deg, 1.0)
    alias = np.array([index[item] for item in real.tolist()], dtype=np.int64)
    return nodes, adj_in, adj_out, alias
