"""Layer normalization."""

from __future__ import annotations

from repro.autograd import init
from repro.autograd.tensor import Tensor
from repro.nn.module import Module, Parameter


class LayerNorm(Module):
    """Normalize the last axis to zero mean / unit variance, then affine."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gain = Parameter(init.ones((dim,)))
        self.bias = Parameter(init.zeros((dim,)))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered * (var + self.eps).pow(-0.5)
        return normed * self.gain + self.bias
