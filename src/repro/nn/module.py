"""Module/Parameter containers with recursive parameter discovery."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as trainable when assigned to a Module."""

    __slots__ = ()

    def __init__(self, data, dtype=None) -> None:
        super().__init__(data, requires_grad=True, dtype=dtype)


class Module:
    """Base class for layers and models.

    Assigning a :class:`Parameter` or another :class:`Module` as an
    attribute registers it, so :meth:`parameters` and :meth:`state_dict`
    can walk the tree recursively (mirrors the torch.nn.Module contract).
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """All trainable parameters of this module and its children."""
        return [p for _, p in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Train / eval mode
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter array keyed by dotted path."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray],
                        partial: bool = False) -> None:
        """Copy ``state`` into this module's parameters.

        With ``partial=True`` parameters absent from ``state`` keep
        their current values (used by process workers, whose frozen
        tables arrive through the shared-memory plane rather than the
        shipped state); unexpected keys always raise.

        Parameters wrapping **read-only** buffers (shared-memory plane
        views, frozen tables shared between agent clones) are loaded
        copy-on-write: an identical payload is skipped (the sharing is
        preserved — this is what makes hot-swap clones O(trainable
        params)), a differing one replaces the view with a private
        writable copy instead of corrupting the shared buffer.
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if unexpected or (missing and not partial):
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if name not in state:
                continue
            value = state[name]
            if param.data.shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{param.data.shape} vs {value.shape}"
                )
            if not param.data.flags.writeable:
                if np.array_equal(param.data, value):
                    continue  # same payload: keep sharing the buffer
                param.data = np.array(value, dtype=param.data.dtype)
            else:
                param.data[...] = value

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Sequential(Module):
    """Feed-forward container applying children in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for i, module in enumerate(modules):
            name = f"layer{i}"
            setattr(self, name, module)
            self._order.append(name)

    def forward(self, x):
        for name in self._order:
            x = getattr(self, name)(x)
        return x

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, i: int) -> Module:
        return getattr(self, self._order[i])


class ModuleList(Module):
    """A list of submodules that registers each element."""

    def __init__(self, modules: Optional[List[Module]] = None) -> None:
        super().__init__()
        self._order: List[str] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        name = f"item{len(self._order)}"
        setattr(self, name, module)
        self._order.append(name)

    def __iter__(self) -> Iterator[Module]:
        return (getattr(self, name) for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, i: int) -> Module:
        return getattr(self, self._order[i])
