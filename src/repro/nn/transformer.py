"""Transformer encoder stack (BERT4REC substrate)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.attention import MultiHeadAttention
from repro.nn.dropout import Dropout
from repro.nn.embedding import Embedding
from repro.nn.linear import Linear
from repro.nn.module import Module, ModuleList
from repro.nn.norm import LayerNorm


class LearnedPositionalEmbedding(Module):
    """Learned absolute position embeddings added to item embeddings."""

    def __init__(self, max_len: int, dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.max_len = max_len
        self.table = Embedding(max_len, dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        steps = x.shape[1]
        if steps > self.max_len:
            raise ValueError(f"sequence length {steps} exceeds max_len {self.max_len}")
        positions = np.arange(steps, dtype=np.int64)
        return x + self.table(positions)


class TransformerEncoderLayer(Module):
    """Post-norm transformer block: MHA -> Add&Norm -> FFN -> Add&Norm."""

    def __init__(self, dim: int, num_heads: int, ffn_dim: Optional[int] = None,
                 dropout: float = 0.1,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        ffn_dim = ffn_dim or 4 * dim
        self.attention = MultiHeadAttention(dim, num_heads, rng=rng)
        self.norm1 = LayerNorm(dim)
        self.norm2 = LayerNorm(dim)
        self.ffn_in = Linear(dim, ffn_dim, rng=rng)
        self.ffn_out = Linear(ffn_dim, dim, rng=rng)
        self.drop = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        attended = self.drop(self.attention(x, mask=mask))
        x = self.norm1(x + attended)
        hidden = self.ffn_out(F.gelu(self.ffn_in(x)))
        return self.norm2(x + self.drop(hidden))


class TransformerEncoder(Module):
    """A stack of encoder layers."""

    def __init__(self, dim: int, num_heads: int, num_layers: int,
                 ffn_dim: Optional[int] = None, dropout: float = 0.1,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.layers = ModuleList([
            TransformerEncoderLayer(dim, num_heads, ffn_dim, dropout, rng=rng)
            for _ in range(num_layers)
        ])

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        for layer in self.layers:
            x = layer(x, mask=mask)
        return x
