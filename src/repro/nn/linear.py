"""Affine layers."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.autograd import functional as F
from repro.autograd import init
from repro.autograd.tensor import Tensor
from repro.nn.module import Module, Parameter


class Linear(Module):
    """``y = x @ W^T + b`` over the last axis of ``x``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight.transpose())
        if self.bias is not None:
            out = out + self.bias
        return out


class MLP(Module):
    """Multi-layer perceptron with a configurable activation.

    Used for the REKS state featurizer ``s_t = MLP(Se ⊕ Sp)`` (Eq. 3)
    and as the transformer feed-forward block.
    """

    def __init__(self, sizes: Sequence[int],
                 activation: Callable[[Tensor], Tensor] = F.relu,
                 final_activation: bool = False,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least an input and an output size")
        rng = rng or np.random.default_rng()
        self.activation = activation
        self.final_activation = final_activation
        self._layer_names = []
        for i, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            name = f"fc{i}"
            setattr(self, name, Linear(fan_in, fan_out, rng=rng))
            self._layer_names.append(name)

    def forward(self, x: Tensor) -> Tensor:
        last = len(self._layer_names) - 1
        for i, name in enumerate(self._layer_names):
            x = getattr(self, name)(x)
            if i < last or self.final_activation:
                x = self.activation(x)
        return x
