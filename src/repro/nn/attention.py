"""Attention mechanisms: additive (NARM) and scaled dot-product / multi-head."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.linear import Linear
from repro.nn.module import Module, Parameter
from repro.autograd import init

NEG_INF = -1e9


class AdditiveAttention(Module):
    """NARM-style additive attention.

    ``alpha_j = v^T sigmoid(A1 h_last + A2 h_j)`` followed by a weighted
    sum of the encoder states.
    """

    def __init__(self, hidden_size: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.query_proj = Linear(hidden_size, hidden_size, bias=False, rng=rng)
        self.key_proj = Linear(hidden_size, hidden_size, bias=False, rng=rng)
        self.score_vec = Parameter(init.xavier_uniform((hidden_size, 1), rng))

    def forward(self, query: Tensor, keys: Tensor,
                mask: Optional[np.ndarray] = None) -> Tuple[Tensor, Tensor]:
        """Attend ``query (B, d)`` over ``keys (B, T, d)``.

        Returns ``(context (B, d), weights (B, T))``.
        """
        batch, steps, dim = keys.shape
        q = self.query_proj(query).reshape(batch, 1, dim)
        k = self.key_proj(keys)
        energy = (q + k).sigmoid().matmul(self.score_vec).reshape(batch, steps)
        if mask is not None:
            energy = energy.masked_fill(~np.asarray(mask, dtype=bool), NEG_INF)
        weights = F.softmax(energy, axis=-1)
        context = (weights.reshape(batch, steps, 1) * keys).sum(axis=1)
        return context, weights


def scaled_dot_product_attention(q: Tensor, k: Tensor, v: Tensor,
                                 mask: Optional[np.ndarray] = None) -> Tuple[Tensor, Tensor]:
    """Attention(Q, K, V) = softmax(QK^T / sqrt(d)) V.

    ``q, k, v`` are ``(..., T, d)``; ``mask`` broadcasts against the
    ``(..., Tq, Tk)`` score matrix with True marking *valid* positions.
    """
    dim = q.shape[-1]
    scores = q.matmul(k.swapaxes(-1, -2)) * (1.0 / np.sqrt(dim))
    if mask is not None:
        scores = scores.masked_fill(~np.asarray(mask, dtype=bool), NEG_INF)
    weights = F.softmax(scores, axis=-1)
    return weights.matmul(v), weights


class MultiHeadAttention(Module):
    """Standard multi-head attention (the BERT4REC/GCSAN substrate)."""

    def __init__(self, dim: int, num_heads: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by heads {num_heads}")
        rng = rng or np.random.default_rng()
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, rng=rng)
        self.k_proj = Linear(dim, dim, rng=rng)
        self.v_proj = Linear(dim, dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)

    def _split(self, x: Tensor, batch: int, steps: int) -> Tensor:
        return x.reshape(batch, steps, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        """Self-attention over ``x (B, T, d)``.

        ``mask (B, T)`` marks valid key positions; it is broadcast to all
        heads and query positions.
        """
        batch, steps, _ = x.shape
        q = self._split(self.q_proj(x), batch, steps)
        k = self._split(self.k_proj(x), batch, steps)
        v = self._split(self.v_proj(x), batch, steps)
        attn_mask = None
        if mask is not None:
            attn_mask = np.asarray(mask, dtype=bool).reshape(batch, 1, 1, steps)
        context, _ = scaled_dot_product_attention(q, k, v, mask=attn_mask)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, steps, self.dim)
        return self.out_proj(merged)
