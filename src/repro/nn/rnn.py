"""Gated recurrent units (the GRU4REC / NARM substrate)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd import functional as F
from repro.autograd import init
from repro.autograd.tensor import Tensor
from repro.nn.module import Module, Parameter


class GRUCell(Module):
    """Single GRU step following the torch gate layout (r, z, n)."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(init.xavier_uniform((3 * hidden_size, input_size), rng))
        self.weight_hh = Parameter(init.xavier_uniform((3 * hidden_size, hidden_size), rng))
        self.bias_ih = Parameter(init.zeros((3 * hidden_size,)))
        self.bias_hh = Parameter(init.zeros((3 * hidden_size,)))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        hs = self.hidden_size
        gi = x.matmul(self.weight_ih.transpose()) + self.bias_ih
        gh = h.matmul(self.weight_hh.transpose()) + self.bias_hh
        i_r, i_z, i_n = gi[:, :hs], gi[:, hs:2 * hs], gi[:, 2 * hs:]
        h_r, h_z, h_n = gh[:, :hs], gh[:, hs:2 * hs], gh[:, 2 * hs:]
        reset = (i_r + h_r).sigmoid()
        update = (i_z + h_z).sigmoid()
        candidate = (i_n + reset * h_n).tanh()
        return (1.0 - update) * candidate + update * h


class GRU(Module):
    """Batched multi-step GRU with padding masks.

    Processes ``(batch, time, input)`` sequences; padded positions keep
    the previous hidden state so a left- or right-padded batch yields the
    same per-session representation as unpadded processing.
    """

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self._cells = []
        for layer in range(num_layers):
            cell = GRUCell(input_size if layer == 0 else hidden_size, hidden_size, rng=rng)
            name = f"cell{layer}"
            setattr(self, name, cell)
            self._cells.append(name)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None,
                h0: Optional[Tensor] = None) -> Tuple[Tensor, Tensor]:
        """Run the GRU; returns ``(outputs, final_hidden)``.

        Parameters
        ----------
        x:
            ``(batch, time, input)`` inputs.
        mask:
            ``(batch, time)`` float/bool array, 1 for real positions.
        """
        batch, steps, _ = x.shape
        if mask is None:
            mask = np.ones((batch, steps), dtype=np.float32)
        mask = np.asarray(mask, dtype=np.float32)
        layer_input = x
        final_hidden = None
        for name in self._cells:
            cell: GRUCell = getattr(self, name)
            h = h0 if (h0 is not None and name == self._cells[0]) else None
            if h is None:
                h = Tensor(np.zeros((batch, self.hidden_size), dtype=np.float32))
            outputs = []
            for t in range(steps):
                x_t = layer_input[:, t, :]
                h_new = cell(x_t, h)
                keep = Tensor(mask[:, t:t + 1])
                h = keep * h_new + (1.0 - keep) * h
                outputs.append(h)
            layer_input = F.stack(outputs, axis=1)
            final_hidden = h
        return layer_input, final_hidden
