"""Dropout layer (inverted dropout, module-owned RNG)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class Dropout(Module):
    """Zeroes activations with probability ``p`` while training."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self.rng)
