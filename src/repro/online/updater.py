"""Background fine-tune → publish loop closing the train→serve cycle.

An :class:`OnlineUpdater` owns the *training replica* of the stack (a
:class:`~repro.core.trainer.REKSTrainer`) and periodically:

1. compacts the environment's staged edge overlay so fine-tune walks
   see the freshest adjacency in CSR form;
2. drains buffered sessions from the :class:`~repro.online.ingest.DeltaIngestor`
   and runs a bounded number of ordinary training steps on them
   (:meth:`REKSTrainer.finetune`);
3. publishes the updated weights to the
   :class:`~repro.online.registry.CheckpointRegistry` with the KG
   fingerprint in the manifest;
4. invokes ``on_publish(version)`` — typically
   ``server.swap_model`` — so live servers roll over with zero
   downtime.

Thread model: the updater trains on its *own* thread with gradient
mode enabled there (grad mode is thread-local — see
``repro.autograd.tensor``), while serving workers run ``no_grad``
walks on *cloned* agents (:func:`repro.core.agent.clone_agent`, which
every :meth:`~repro.serving.server.RecommendationServer.swap_model`
performs).  The trainer's own agent must therefore not serve traffic
while the background loop is running — publish + swap is the hand-off.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Callable, List, Optional

from repro.online.ingest import DeltaIngestor
from repro.online.registry import CheckpointRegistry


class OnlineUpdater:
    """Drive ingest → fine-tune → publish rounds, inline or background.

    Parameters
    ----------
    trainer:
        The training replica whose agent is fine-tuned and checkpointed.
    ingestor:
        Source of buffered session deltas (and staged KG edges).
    registry:
        Destination for published checkpoints.
    min_sessions / max_steps / interval_s:
        Default to the trainer config's ``online_*`` knobs: a round is
        skipped while fewer than ``min_sessions`` sessions are buffered;
        each round runs at most ``max_steps`` fine-tune batches; the
        background loop polls every ``interval_s`` seconds.
    on_publish:
        Optional callback invoked with each new version id after a
        successful publish (exceptions are captured per round, not
        raised into the loop).
    """

    def __init__(self, trainer, ingestor: DeltaIngestor,
                 registry: CheckpointRegistry, *,
                 min_sessions: Optional[int] = None,
                 max_steps: Optional[int] = None,
                 interval_s: Optional[float] = None,
                 on_publish: Optional[Callable[[int], None]] = None) -> None:
        cfg = trainer.config
        self.trainer = trainer
        self.ingestor = ingestor
        self.registry = registry
        self.min_sessions = (cfg.online_min_sessions if min_sessions is None
                             else min_sessions)
        self.max_steps = (cfg.online_max_steps if max_steps is None
                          else max_steps)
        self.interval_s = (cfg.online_interval_s if interval_s is None
                           else interval_s)
        self.on_publish = on_publish
        self.rounds = 0
        self.published: List[int] = []
        self.last_error: Optional[BaseException] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # One round (also the unit the tests drive deterministically)
    # ------------------------------------------------------------------
    def run_once(self, force: bool = False) -> Optional[int]:
        """One ingest→fine-tune→publish round.

        Returns the published version id, or None when the round was
        skipped (fewer than ``min_sessions`` buffered and not
        ``force``).  ``force`` with an empty buffer still publishes —
        that is how the very first checkpoint (the warm-start weights
        a server boots from) enters the registry.
        """
        if not force and self.ingestor.pending_sessions < self.min_sessions:
            return None
        started = perf_counter()
        self.ingestor.compact()  # fine-tune walks on merged CSR tables
        sessions = self.ingestor.drain_sessions()
        diagnostics = {"steps": 0.0}
        if sessions:
            diagnostics = self.trainer.finetune(sessions,
                                               max_steps=self.max_steps)
        meta = {
            "model": self.trainer.model_name,
            "dataset": self.trainer.dataset.name,
            "dim": self.trainer.config.dim,
            "kg_fingerprint": self.trainer.env.fingerprint(),
            "sessions": len(sessions),
            "steps": int(diagnostics["steps"]),
            "loss": diagnostics.get("loss"),
            "round_seconds": perf_counter() - started,
        }
        version = self.registry.publish(self.trainer.agent.state_dict(),
                                        meta=meta)
        self.rounds += 1
        self.published.append(version)
        if self.on_publish is not None:
            try:
                self.on_publish(version)
            except BaseException as exc:  # keep the loop alive
                self.last_error = exc
        return version

    # ------------------------------------------------------------------
    # Background loop
    # ------------------------------------------------------------------
    def start(self) -> "OnlineUpdater":
        """Run rounds on a daemon thread every ``interval_s`` seconds."""
        if self._thread is not None:
            raise RuntimeError("updater already started")
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="reks-online-updater")
        self._thread.start()
        return self

    def stop(self, final_round: bool = False) -> None:
        """Stop the loop; optionally flush one last forced round."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if final_round and self.ingestor.pending_sessions:
            self.run_once(force=True)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.run_once()
            except BaseException as exc:  # pragma: no cover - defensive
                self.last_error = exc
            self._stop.wait(self.interval_s)

    def __enter__(self) -> "OnlineUpdater":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
