"""Background fine-tune → publish loop closing the train→serve cycle.

An :class:`OnlineUpdater` owns the *training replica* of the stack (a
:class:`~repro.core.trainer.REKSTrainer`) and periodically:

1. compacts the environment's staged edge overlay so fine-tune walks
   see the freshest adjacency in CSR form;
2. drains buffered sessions from the :class:`~repro.online.ingest.DeltaIngestor`
   and runs a bounded number of ordinary training steps on them
   (:meth:`REKSTrainer.finetune`);
3. publishes the updated weights to the
   :class:`~repro.online.registry.CheckpointRegistry` with the KG
   fingerprint in the manifest;
4. invokes ``on_publish(version)`` — typically
   ``server.swap_model`` — so live servers roll over with zero
   downtime.

Thread model: the updater trains on its *own* thread with gradient
mode enabled there (grad mode is thread-local — see
``repro.autograd.tensor``), while serving workers run ``no_grad``
walks on *cloned* agents (:func:`repro.core.agent.clone_agent`, which
every :meth:`~repro.serving.server.RecommendationServer.swap_model`
performs).  The trainer's own agent must therefore not serve traffic
while the background loop is running — publish + swap is the hand-off.

Process model (``mode="subprocess"``): the fine-tune replica lives in
a **forked child interpreter**, so a training round no longer competes
with serving workers for this process's GIL.  Each round the parent
drains the ingestor's buffered sessions over a pipe; the child
re-derives their KG edges into its own environment, fine-tunes its own
trainer copy, and publishes through the (file-locked)
:class:`~repro.online.registry.CheckpointRegistry`; the parent then
fires ``on_publish`` — servers load the checkpoint from disk exactly
as in thread mode.  The parent's trainer weights intentionally stay at
their fork-time values (the child owns the evolving replica; the
registry is the source of truth).  Requires the ``fork`` start method
(the live environment cannot be pickled for ``spawn``); raw-triple
deltas ingested via ``ingest_triples`` reach the child only at the
next fork, so stacks relying on them should stay in thread mode.
"""

from __future__ import annotations

import os
import threading
from time import perf_counter
from typing import Callable, List, Optional

from repro.online.ingest import DeltaIngestor
from repro.online.registry import CheckpointRegistry
from repro.telemetry.block import BlockManifest, MetricBlock


def _run_round(trainer, ingestor: DeltaIngestor,
               registry: CheckpointRegistry, sessions,
               max_steps: int, metrics: Optional[MetricBlock] = None
               ) -> int:
    """One compact → fine-tune → publish round (caller's interpreter).

    Shared by the inline path (:meth:`OnlineUpdater.run_once`) and the
    subprocess child loop so both publish byte-identical manifests.
    With a ``metrics`` block the round's phases land in the fleet
    telemetry plane (``online_round/compact/publish_seconds``,
    ``online_rounds/sessions_total``) — written by whichever
    interpreter runs the round, merged by the parent registry.
    """
    started = perf_counter()
    ingestor.compact()  # fine-tune walks on merged CSR tables
    compacted = perf_counter()
    diagnostics = {"steps": 0.0}
    if sessions:
        diagnostics = trainer.finetune(sessions, max_steps=max_steps)
    publish_t0 = perf_counter()
    meta = {
        "model": trainer.model_name,
        "dataset": trainer.dataset.name,
        "dim": trainer.config.dim,
        "kg_fingerprint": trainer.env.fingerprint(),
        "sessions": len(sessions),
        "steps": int(diagnostics["steps"]),
        "loss": diagnostics.get("loss"),
        "round_seconds": perf_counter() - started,
    }
    version = registry.publish(trainer.agent.state_dict(), meta=meta)
    if metrics is not None:
        done = perf_counter()
        metrics.count("online_rounds_total")
        metrics.count("online_sessions_total", len(sessions))
        metrics.observe("online_compact_seconds", compacted - started)
        metrics.observe("online_publish_seconds", done - publish_t0)
        metrics.observe("online_round_seconds", done - started)
    return version


def _updater_child_main(conn, trainer, registry_root, keep_last: int,
                        compact_every: int, max_steps: int,
                        niceness: int = 0,
                        metrics_manifest: Optional[BlockManifest] = None
                        ) -> None:
    """Child loop of the subprocess updater.

    Owns a forked copy of the trainer (environment included) plus its
    own registry handle and ingestor; sessions arrive over the pipe
    and their KG edges are re-derived locally, mirroring what the
    parent's ingestor staged into the serving environment.  The child
    deprioritizes itself by ``niceness``: training is the batch
    workload, serving the latency workload, and on a saturated host
    equal priority would hand the trainer scheduler quanta that show
    up directly in serving's tail latency.
    """
    import traceback

    if niceness > 0:
        try:
            os.nice(niceness)
        except OSError:  # pragma: no cover - restricted environments
            pass

    # Fork hygiene: the parent is multi-threaded, so the inherited
    # overlay lock may be captured held and the staged dict captured
    # mid-mutation.  This child re-derives every edge from the
    # sessions shipped to it, so it starts from a fresh lock and an
    # empty overlay rather than trusting fork-time state.
    trainer.env.reset_overlay_after_fork()
    registry = CheckpointRegistry(registry_root, keep_last=keep_last)
    ingestor = DeltaIngestor(trainer.built, trainer.env,
                             compact_every=compact_every)
    # The parent owns the block's segment (it outlives child respawns);
    # this child only attaches as the writer.
    metrics = (MetricBlock.attach(metrics_manifest, writer=True)
               if metrics_manifest is not None else None)
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, KeyboardInterrupt):
                return
            if message[0] == "stop":
                conn.send(("ok",))
                return
            if message[0] != "round":  # pragma: no cover - protocol guard
                conn.send(("err", f"unknown op {message[0]!r}"))
                continue
            _, sessions = message
            try:
                if sessions:
                    ingest_t0 = perf_counter()
                    ingestor.ingest_sessions(sessions)
                    # The round fine-tunes on the pipe-shipped list;
                    # drain the ingestor's duplicate buffer or the
                    # persistent child accumulates every session it
                    # ever saw.
                    ingestor.drain_sessions()
                    if metrics is not None:
                        metrics.observe("online_ingest_seconds",
                                        perf_counter() - ingest_t0)
                version = _run_round(trainer, ingestor, registry,
                                     sessions, max_steps, metrics)
                conn.send(("published", version))
            except Exception:
                conn.send(("err", traceback.format_exc()))
    finally:
        if metrics is not None:
            metrics.close()


class OnlineUpdater:
    """Drive ingest → fine-tune → publish rounds, inline or background.

    Parameters
    ----------
    trainer:
        The training replica whose agent is fine-tuned and checkpointed.
    ingestor:
        Source of buffered session deltas (and staged KG edges).
    registry:
        Destination for published checkpoints.
    min_sessions / max_steps / interval_s:
        Default to the trainer config's ``online_*`` knobs: a round is
        skipped while fewer than ``min_sessions`` sessions are buffered;
        each round runs at most ``max_steps`` fine-tune batches; the
        background loop polls every ``interval_s`` seconds.
    on_publish:
        Optional callback invoked with each new version id after a
        successful publish (exceptions are captured per round, not
        raised into the loop).
    """

    def __init__(self, trainer, ingestor: DeltaIngestor,
                 registry: CheckpointRegistry, *,
                 min_sessions: Optional[int] = None,
                 max_steps: Optional[int] = None,
                 interval_s: Optional[float] = None,
                 on_publish: Optional[Callable[[int], None]] = None,
                 mode: Optional[str] = None,
                 metrics_registry=None) -> None:
        cfg = trainer.config
        self.trainer = trainer
        self.ingestor = ingestor
        self.registry = registry
        self.min_sessions = (cfg.online_min_sessions if min_sessions is None
                             else min_sessions)
        self.max_steps = (cfg.online_max_steps if max_steps is None
                          else max_steps)
        self.interval_s = (cfg.online_interval_s if interval_s is None
                           else interval_s)
        self.mode = cfg.online_updater_mode if mode is None else mode
        if self.mode not in ("thread", "subprocess"):
            raise ValueError(
                f"mode must be 'thread' or 'subprocess', got {self.mode!r}")
        self.on_publish = on_publish
        # Fleet telemetry: one "updater" role block in the caller's
        # MetricsRegistry (usually the serving server's).  The parent
        # owns the segment; thread-mode rounds write it directly, while
        # subprocess mode ships the manifest to the forked child, which
        # attaches as the writer — either way the registry's merged
        # snapshot carries the online round/ingest/compact/publish
        # timings next to the serving counters.
        self._metrics_registry = metrics_registry
        self._metrics = None
        if metrics_registry is not None:
            from repro.telemetry.block import fleet_schema
            store = trainer.env.csr_tables()
            self._metrics = metrics_registry.create_block(
                "updater", fleet_schema(num_shards=len(store.shards),
                                        hops=cfg.path_length))
        self.rounds = 0
        self.published: List[int] = []
        self.last_error: Optional[BaseException] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        # Subprocess mode: one persistent forked child owning the
        # fine-tune replica; guarded by a lock so the background loop
        # and explicit run_once calls serialize on the pipe.
        self._child = None
        self._child_conn = None
        self._child_lock = threading.Lock()

    # ------------------------------------------------------------------
    # One round (also the unit the tests drive deterministically)
    # ------------------------------------------------------------------
    def run_once(self, force: bool = False) -> Optional[int]:
        """One ingest→fine-tune→publish round.

        Returns the published version id, or None when the round was
        skipped (fewer than ``min_sessions`` buffered and not
        ``force``).  ``force`` with an empty buffer still publishes —
        that is how the very first checkpoint (the warm-start weights
        a server boots from) enters the registry.
        """
        if not force and self.ingestor.pending_sessions < self.min_sessions:
            return None
        sessions = self.ingestor.drain_sessions()
        if self.mode == "subprocess":
            version = self._round_in_subprocess(sessions)
        else:
            version = _run_round(self.trainer, self.ingestor,
                                 self.registry, sessions, self.max_steps,
                                 self._metrics)
        self.rounds += 1
        self.published.append(version)
        if self.on_publish is not None:
            try:
                self.on_publish(version)
            except BaseException as exc:  # keep the loop alive
                self.last_error = exc
        return version

    # ------------------------------------------------------------------
    # Subprocess isolation
    # ------------------------------------------------------------------
    def _ensure_child(self):
        """Fork the persistent fine-tune child on first use."""
        if self._child is not None and self._child.is_alive():
            return
        from repro.runtime import resolve_context

        try:
            context = resolve_context("fork")
        except ValueError as exc:
            raise RuntimeError(
                "subprocess updater mode needs the 'fork' start method "
                "(the live environment cannot be pickled for spawn); "
                "use mode='thread' on this platform") from exc
        self._child_conn, child_end = context.Pipe(duplex=True)
        self._child = context.Process(
            target=_updater_child_main,
            args=(child_end, self.trainer, self.registry.root,
                  self.registry.keep_last, self.ingestor.compact_every,
                  self.max_steps,
                  self.trainer.config.online_subprocess_nice,
                  self._metrics.manifest
                  if self._metrics is not None else None),
            name="reks-online-updater-proc", daemon=True)
        self._child.start()
        child_end.close()

    def _round_in_subprocess(self, sessions) -> int:
        """Ship one round to the child and wait for its publish.

        Blocking here costs only the *calling* thread — serving workers
        keep executing because the fine-tune compute happens in the
        child interpreter, which is the entire point of the mode.
        """
        with self._child_lock:
            self._ensure_child()
            self._child_conn.send(("round", list(sessions)))
            reply = self._child_conn.recv()
        if reply[0] == "published":
            # The parent's own environment already carries these edges
            # (the ingestor staged them at ingest time); compact so the
            # serving adjacency matches the fingerprint just published.
            self.ingestor.compact()
            return int(reply[1])
        raise RuntimeError(
            f"subprocess fine-tune round failed:\n{reply[1]}")

    def _stop_child(self) -> None:
        with self._child_lock:
            if self._child is None:
                return
            try:
                self._child_conn.send(("stop",))
                self._child_conn.recv()
            except (EOFError, BrokenPipeError, OSError):
                pass
            self._child.join(5.0)
            if self._child.is_alive():  # pragma: no cover - stuck child
                self._child.terminate()
                self._child.join(5.0)
            self._child_conn.close()
            self._child = None
            self._child_conn = None

    # ------------------------------------------------------------------
    # Background loop
    # ------------------------------------------------------------------
    def start(self) -> "OnlineUpdater":
        """Run rounds on a daemon thread every ``interval_s`` seconds."""
        if self._thread is not None:
            raise RuntimeError("updater already started")
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="reks-online-updater")
        self._thread.start()
        return self

    def stop(self, final_round: bool = False) -> None:
        """Stop the loop; optionally flush one last forced round."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if final_round and self.ingestor.pending_sessions:
            self.run_once(force=True)
        self._stop_child()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.run_once()
            except BaseException as exc:  # pragma: no cover - defensive
                self.last_error = exc
            self._stop.wait(self.interval_s)

    def __enter__(self) -> "OnlineUpdater":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
