"""Versioned checkpoint registry backing the continual-learning loop.

A registry is a directory of ``.npz`` checkpoints (written through
:mod:`repro.io`, so every file carries a validated JSON header) plus a
``manifest.json`` index.  Versions are monotonically increasing
integers — once published, a version id is never reused, even after
its file has been pruned by the retention policy or the process has
restarted.

Publishing is atomic at the filesystem level: both the checkpoint and
the manifest are written to a temporary sibling and ``os.replace``-d
into place, so a reader (another process hot-swapping a server, or a
crashed publisher restarting) never observes a half-written file.

Multi-writer safety: every mutation (publish, and the pruning that
rides on it) runs under an advisory
:class:`~repro.runtime.lease.FileLease` on ``registry.lock`` and
re-reads the manifest from disk first, so several publishers — a
subprocess updater, a rollback operator, a second host sharing the
directory — interleave without losing entries or reusing version ids;
a publisher that dies mid-critical-section is taken over once its
lease goes stale.  Reads always re-read the on-disk manifest (the
``os.replace`` publish makes that a consistent snapshot), so a handle
in one process sees versions published by another.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.io import load_state_dict, save_state_dict
from repro.runtime.lease import FileLease

MANIFEST_NAME = "manifest.json"
LOCK_NAME = "registry.lock"


class CheckpointNotFound(KeyError):
    """Raised when loading a version the registry does not hold."""


class CheckpointRegistry:
    """Directory-backed registry of monotonically versioned checkpoints.

    Parameters
    ----------
    root:
        Directory holding the checkpoints and manifest (created on
        first publish).
    keep_last:
        Retention policy — how many most-recent checkpoints to keep on
        disk (``0`` disables pruning).  Pruned versions stay listed in
        the manifest with ``"pruned": true`` so the version counter
        stays monotonic and history stays auditable.
    """

    def __init__(self, root, keep_last: int = 5,
                 lease_ttl_s: float = 30.0) -> None:
        if keep_last < 0:
            raise ValueError(f"keep_last must be >= 0, got {keep_last}")
        self.root = Path(root)
        self.keep_last = keep_last
        self.lease_ttl_s = lease_ttl_s
        self._lock = threading.Lock()
        self._manifest = self._read_manifest()

    def _lease(self) -> FileLease:
        """The cross-process writer lease for this registry directory."""
        return FileLease(self.root / LOCK_NAME, ttl_s=self.lease_ttl_s)

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(self, state: Dict[str, np.ndarray],
                meta: Optional[dict] = None) -> int:
        """Write a new checkpoint; returns its (new, monotonic) version.

        ``meta`` is stored both in the checkpoint header (validated at
        load) and the manifest (listable without opening the archive).
        Typical entries: model name, dataset, dim, and the serving
        environment's :meth:`~repro.core.environment.KGEnvironment.fingerprint`.
        """
        meta = dict(meta or {})
        self.root.mkdir(parents=True, exist_ok=True)
        with self._lock, self._lease():
            # Another process may have published since we last looked:
            # re-read the manifest under the lease so version ids stay
            # monotonic across *writers*, not just within this handle.
            self._manifest = self._read_manifest()
            version = self._next_version_locked()
            meta["version"] = version
            path = self.root / self._filename(version)
            tmp = path.with_suffix(".npz.tmp")
            save_state_dict(tmp, state, meta=meta)
            os.replace(tmp, path)
            self._manifest["checkpoints"].append(
                {"version": version, "file": path.name, "meta": meta,
                 "pruned": False})
            self._prune_locked()
            self._write_manifest_locked()
        return version

    # ------------------------------------------------------------------
    # Loading / listing
    # ------------------------------------------------------------------
    def load(self, version: Optional[int] = None,
             expected_meta: Optional[dict] = None
             ) -> Tuple[Dict[str, np.ndarray], dict]:
        """Read checkpoint ``version`` (default: latest live one).

        Returns ``(state_dict, manifest_entry_meta)``.  The stored
        header is validated to carry the requested version, plus any
        ``expected_meta`` entries (model/dataset/dim guards).
        """
        with self._lock:
            self._manifest = self._read_manifest()
            entry = self._entry_locked(version)
            path = self.root / entry["file"]
        expected = {"version": entry["version"]}
        if expected_meta:
            expected.update(expected_meta)
        state = load_state_dict(path, expected_meta=expected)
        return state, dict(entry["meta"])

    def latest(self) -> Optional[int]:
        """Newest non-pruned version, or None for an empty registry."""
        with self._lock:
            self._manifest = self._read_manifest()
            live = [c["version"] for c in self._manifest["checkpoints"]
                    if not c["pruned"]]
        return max(live) if live else None

    def versions(self) -> List[int]:
        """Non-pruned versions, ascending."""
        with self._lock:
            self._manifest = self._read_manifest()
            return sorted(c["version"]
                          for c in self._manifest["checkpoints"]
                          if not c["pruned"])

    def manifest(self, version: Optional[int] = None) -> dict:
        """The manifest entry for ``version`` (default latest)."""
        with self._lock:
            self._manifest = self._read_manifest()
            return dict(self._entry_locked(version))

    def __len__(self) -> int:
        return len(self.versions())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _filename(version: int) -> str:
        return f"ckpt-{version:06d}.npz"

    def _entry_locked(self, version: Optional[int]) -> dict:
        live = [c for c in self._manifest["checkpoints"] if not c["pruned"]]
        if not live:
            raise CheckpointNotFound("registry holds no checkpoints")
        if version is None:
            return max(live, key=lambda c: c["version"])
        for entry in live:
            if entry["version"] == version:
                return entry
        raise CheckpointNotFound(
            f"version {version} not in registry "
            f"(live: {[c['version'] for c in live]})")

    def _next_version_locked(self) -> int:
        published = [c["version"] for c in self._manifest["checkpoints"]]
        return (max(published) + 1) if published else 1

    def _prune_locked(self) -> None:
        if not self.keep_last:
            return
        live = sorted((c for c in self._manifest["checkpoints"]
                       if not c["pruned"]),
                      key=lambda c: c["version"])
        for entry in live[:-self.keep_last or None]:
            path = self.root / entry["file"]
            if path.exists():
                path.unlink()
            entry["pruned"] = True

    def _read_manifest(self) -> dict:
        path = self.root / MANIFEST_NAME
        if path.exists():
            manifest = json.loads(path.read_text())
            if "checkpoints" not in manifest:
                raise ValueError(f"{path} is not a registry manifest")
            return manifest
        return {"format_version": 1, "checkpoints": []}

    def _write_manifest_locked(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.root / MANIFEST_NAME
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(self._manifest, indent=2))
        os.replace(tmp, path)

    def __repr__(self) -> str:
        live = self.versions()
        return (f"CheckpointRegistry(root={str(self.root)!r}, "
                f"live={live}, keep_last={self.keep_last})")
