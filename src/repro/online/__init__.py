"""Continual-learning subsystem: the loop that keeps a live stack fresh.

The offline pipeline (train once on a frozen session log and KG) meets
live traffic here.  Three cooperating pieces close the train→serve
loop:

* :class:`~repro.online.registry.CheckpointRegistry` — monotonic
  versioned checkpoints with atomic publish and a retention policy;
* :class:`~repro.online.ingest.DeltaIngestor` — streamed sessions and
  KG triples staged into the live environment (visible to in-flight
  walks immediately, compacted into CSR periodically) and buffered as
  fine-tuning examples;
* :class:`~repro.online.updater.OnlineUpdater` — a background
  fine-tune → publish loop whose ``on_publish`` hook hot-swaps live
  :class:`~repro.serving.RecommendationServer` instances with zero
  downtime (version-tagged cache entries age out instead of being
  flushed).

Quickstart::

    registry = CheckpointRegistry("checkpoints/", keep_last=5)
    ingestor = DeltaIngestor(trainer.built, trainer.env)
    server = trainer.serve(registry=registry)
    updater = OnlineUpdater(trainer, ingestor, registry,
                            on_publish=server.swap_model)
    server.swap_model(updater.run_once(force=True))  # warm start
    with updater:                                    # background loop
        ingestor.ingest_sessions(fresh_traffic)
        ...                                          # keep serving

See ``README.md`` in this directory for the lifecycle note.
"""

from repro.online.ingest import DeltaIngestor
from repro.online.registry import CheckpointNotFound, CheckpointRegistry
from repro.online.updater import OnlineUpdater

__all__ = [
    "CheckpointNotFound",
    "CheckpointRegistry",
    "DeltaIngestor",
    "OnlineUpdater",
]
