"""Streaming delta ingestion: new sessions and KG triples, live.

The offline pipeline freezes both the session log and the KG before
training; this module is the online counterpart.  A
:class:`DeltaIngestor` accepts streamed sessions and raw triples,
derives the same session-edges the offline builder would have
(directed ``co_occur`` between consecutive distinct items, plus the
bidirectional ``purchase`` pair when the KG has user entities), and
stages them into the live :class:`~repro.core.environment.KGEnvironment`
overlay — visible to in-flight walks immediately, folded into fresh
CSR tables by periodic compaction (``compact_every`` staged edges, or
an explicit :meth:`compact`).

Ingested sessions are also buffered as fine-tuning examples; the
:class:`~repro.online.updater.OnlineUpdater` drains them each round.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence

from repro.core.environment import KGEnvironment
from repro.data.schema import Session
from repro.kg.builder import BuiltKG


class DeltaIngestor:
    """Validates, stages, and buffers streamed deltas for one live stack."""

    def __init__(self, built: BuiltKG, env: KGEnvironment, *,
                 compact_every: int = 1024,
                 compact_shard_every: Optional[int] = None) -> None:
        if compact_every < 1:
            raise ValueError(
                f"compact_every must be >= 1, got {compact_every}")
        if compact_shard_every is not None and compact_shard_every < 1:
            raise ValueError(
                f"compact_shard_every must be >= 1 (or None), "
                f"got {compact_shard_every}")
        self.built = built
        self.env = env
        self.compact_every = compact_every
        # Per-shard early trigger: compaction is delta-proportional
        # (only dirty shards rebuild), so a hot shard can afford to
        # fold early instead of widening every frontier that touches
        # it until the global threshold trips.
        self.compact_shard_every = compact_shard_every
        self._lock = threading.Lock()
        self._pending: List[Session] = []
        self._co_occur = built.kg.relation_id("co_occur")
        try:
            self._purchase: Optional[int] = built.kg.relation_id("purchase")
        except KeyError:
            self._purchase = None
        # Lifetime counters (monotonic; survive drains and compactions).
        self.sessions_ingested = 0
        self.triples_ingested = 0
        self.edges_staged = 0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest_sessions(self, sessions: Sequence[Session]) -> int:
        """Accept a batch of completed sessions.

        Each session is validated (>= 2 items, ids within the trained
        catalog — new items need a retrain, not a delta), converted to
        KG edges exactly the way :func:`repro.kg.builder.build_kg`
        derives them from the training split, staged into the live
        environment, and buffered for the next fine-tune round.
        Returns the number of *new* KG edges staged (duplicates of
        already-known transitions cost nothing).
        """
        accepted: List[Session] = []
        heads: List[int] = []
        rels: List[int] = []
        tails: List[int] = []
        n_items = self.built.n_items
        for session in sessions:
            if len(session.items) < 2:
                raise ValueError(
                    f"ingested sessions need >= 2 items, got "
                    f"{len(session.items)}")
            for item in session.items:
                if not 1 <= item <= n_items:
                    raise ValueError(
                        f"item id {item} outside the trained catalog "
                        f"1..{n_items}; online ingestion cannot grow "
                        f"the item set")
            accepted.append(session)
            entities = self.built.entities_of_items(session.items)
            for src, dst in zip(entities[:-1], entities[1:]):
                if src != dst:
                    heads.append(int(src))
                    rels.append(self._co_occur)
                    tails.append(int(dst))
            if self._purchase is not None \
                    and self.built.user_entity is not None \
                    and 0 <= session.user_id < len(self.built.user_entity):
                user = int(self.built.user_entity[session.user_id])
                for entity in entities:
                    heads.extend((user, int(entity)))
                    rels.extend((self._purchase, self._purchase))
                    tails.extend((int(entity), user))
        staged = self.env.stage_edges(heads, rels, tails) if heads else 0
        with self._lock:
            self._pending.extend(accepted)
            self.sessions_ingested += len(accepted)
            self.edges_staged += staged
        self.compact_if_due()
        return staged

    def ingest_triples(self, heads, relation, tails) -> int:
        """Accept raw KG triples (e.g. fresh catalog metadata).

        ``relation`` is a relation id or name; entities must already
        exist.  Returns the number of new edges staged.
        """
        if isinstance(relation, str):
            relation = self.built.kg.relation_id(relation)
        heads = list(heads)
        tails = list(tails)
        staged = self.env.stage_edges(
            heads, [int(relation)] * len(heads), tails)
        with self._lock:
            self.triples_ingested += len(heads)
            self.edges_staged += staged
        self.compact_if_due()
        return staged

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact_if_due(self) -> int:
        """Fold the overlay once a compaction trigger fires.

        Triggers: the global overlay crosses ``compact_every``, or —
        with ``compact_shard_every`` set — any single shard's staged
        count crosses the per-shard threshold (the rebuild then costs
        only that shard's edges, see
        :meth:`~repro.core.environment.KGEnvironment.compact`).
        """
        if self.env.staged_edges >= self.compact_every:
            return self.env.compact()
        if self.compact_shard_every and self.env.staged_edges:
            counts = self.env.staged_counts_by_shard()
            if counts and max(counts.values()) >= self.compact_shard_every:
                return self.env.compact()
        return 0

    def compact(self) -> int:
        """Force a compaction regardless of the staged-edge count."""
        return self.env.compact()

    # ------------------------------------------------------------------
    # Fine-tune hand-off
    # ------------------------------------------------------------------
    @property
    def pending_sessions(self) -> int:
        with self._lock:
            return len(self._pending)

    def drain_sessions(self, max_sessions: Optional[int] = None
                       ) -> List[Session]:
        """Hand the buffered sessions to a fine-tune round (FIFO)."""
        with self._lock:
            if max_sessions is None or max_sessions >= len(self._pending):
                drained, self._pending = self._pending, []
            else:
                drained = self._pending[:max_sessions]
                self._pending = self._pending[max_sessions:]
        return drained

    def __repr__(self) -> str:
        return (f"DeltaIngestor(pending={self.pending_sessions}, "
                f"sessions={self.sessions_ingested}, "
                f"edges_staged={self.edges_staged}, "
                f"staged_now={self.env.staged_edges}, "
                f"compact_every={self.compact_every})")
