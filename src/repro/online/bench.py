"""Benchmark the continual-learning loop: ingest, publish, hot-swap.

One run walks the full online lifecycle against a live server and
measures what each stage costs:

1. **ingest** — stream a session delta through the
   :class:`~repro.online.ingest.DeltaIngestor` (staged-overlay append)
   and force a CSR compaction; report sessions/s, edges staged, and
   compaction seconds;
2. **publish** — fine-tune on the drained delta and publish a new
   checkpoint to the registry;
3. **swap under load** — hot-swap the live server to the new version
   while closed-loop clients keep hammering it; report the swap
   latency, the p95 during the swap window, and that zero requests
   failed or were dropped;
4. **post-swap vs cold restart** — drive the same request set against
   the just-swapped server (alive, cache holding the stale version's
   entries) and against a freshly constructed server on the same
   checkpoint (cold everything); their p95s should match — the swap
   costs no more than a restart, minus the downtime;
5. **determinism** — post-swap rankings must be bit-identical to the
   fresh server's on the same checkpoint.

The payload lands in ``BENCH_online.json``.
"""

from __future__ import annotations

import threading
from time import perf_counter, sleep
from typing import List, Optional, Sequence

import numpy as np

from repro.data.schema import Session
from repro.online.ingest import DeltaIngestor
from repro.online.registry import CheckpointRegistry
from repro.online.updater import OnlineUpdater
from repro.serving.bench import _closed_loop, emit  # noqa: F401 (emit re-exported)


def _counted_loop(server, sessions: Sequence[Session],
                  concurrency: int, k: int):
    """Like :func:`repro.serving.bench._closed_loop`, but returns
    ``(elapsed_s, completed, errors)`` so callers can measure dropped
    requests (submitted - completed) instead of asserting a constant."""
    shards: List[List[Session]] = [
        list(sessions[i::concurrency]) for i in range(concurrency)]
    completed = [0] * len(shards)
    errors: List[BaseException] = []

    def client(index: int, shard: List[Session]) -> None:
        try:
            for session in shard:
                result = server.recommend_one(session, k=k)
                if result is not None and len(result.items) == k:
                    completed[index] += 1
        except BaseException as exc:  # surfaced by the caller
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i, shard))
               for i, shard in enumerate(shards) if shard]
    start = perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return perf_counter() - start, sum(completed), errors


def run_online_bench(trainer, sessions: Sequence[Session],
                     delta: Sequence[Session], *, checkpoint_dir,
                     concurrency: int = 16, k: int = 10,
                     min_requests: int = 256,
                     check_sessions: int = 32,
                     slo: Optional[dict] = None) -> dict:
    """One full lifecycle run; returns the JSON-ready payload.

    A single :class:`~repro.telemetry.registry.MetricsRegistry` spans
    the updater and every server the bench constructs, so the final
    fleet snapshot carries the online round timings next to the
    serving and swap counters, and the swap-latency / p99 SLO gates
    (``slo`` forwards to
    :func:`repro.telemetry.exporters.serving_slos`) evaluate over the
    whole lifecycle.
    """
    from repro.telemetry.exporters import evaluate_slos, serving_slos
    from repro.telemetry.registry import MetricsRegistry
    from repro.telemetry.window import RollingWindow

    sessions = [s for s in sessions if len(s.items) >= 2]
    delta = [s for s in delta if len(s.items) >= 2]
    if not sessions or not delta:
        raise ValueError("need non-empty serving and delta session sets")
    rounds = max(1, -(-min_requests // len(sessions)))
    stream = list(sessions) * rounds
    cfg = trainer.config

    registry = CheckpointRegistry(
        checkpoint_dir, keep_last=cfg.online_keep_checkpoints)
    ingestor = DeltaIngestor(
        trainer.built, trainer.env,
        compact_every=cfg.online_compact_every,
        compact_shard_every=cfg.online_compact_shard_every or None)
    metrics_registry = MetricsRegistry()
    updater = OnlineUpdater(trainer, ingestor, registry,
                            min_sessions=1, max_steps=cfg.online_max_steps,
                            metrics_registry=metrics_registry)

    # Warm-start checkpoint: the weights the server boots from.
    v_base = updater.run_once(force=True)

    # Stage 1: ingest throughput (overlay append + forced compaction).
    start = perf_counter()
    edges_staged = ingestor.ingest_sessions(delta)
    ingest_s = perf_counter() - start
    start = perf_counter()
    edges_compacted = ingestor.compact()
    compact_s = perf_counter() - start

    # Stage 2: fine-tune on the drained delta, publish the new version.
    start = perf_counter()
    v_next = updater.run_once(force=True)
    publish_s = perf_counter() - start

    payload = {
        "benchmark": "online",
        "concurrency": concurrency,
        "k": k,
        "requests": len(stream),
        "distinct_sessions": len(sessions),
        "versions": {"base": v_base, "next": v_next},
        "ingest": {
            "sessions": len(delta),
            "seconds": ingest_s,
            "sessions_per_s": len(delta) / max(ingest_s, 1e-9),
            "edges_staged": edges_staged,
            "edges_compacted": edges_compacted,
            "compact_seconds": compact_s,
            "compactions": trainer.env.compactions,
        },
        "publish": {"seconds": publish_s,
                    "registry_versions": registry.versions()},
    }

    # Rolling window bracketing the serving phases (stages 3-5): the
    # windowed SLO view isolates swap/steady-state traffic from the
    # ingest and publish counters accumulated above.
    rolling = RollingWindow()
    rolling.record(metrics_registry.snapshot())

    with trainer.serve(registry=registry,
                       metrics_registry=metrics_registry) as server:
        server.swap_model(v_base)
        # Warm the cache on the base version so the swap demonstrably
        # does NOT flush it.
        _closed_loop(server, sessions, concurrency, k)
        warm_entries = len(server.cache)
        server.reset_stats()

        # Stage 3: hot-swap mid-traffic.  Clients run the full stream;
        # the swap lands while they are in flight.  Dropped = requests
        # submitted that never came back complete (errored clients
        # also surface, separately, below).
        outcome: List[tuple] = []

        def drive() -> None:
            outcome.append(_counted_loop(server, stream, concurrency, k))

        traffic = threading.Thread(target=drive)
        traffic.start()
        sleep(0.02)  # let the loop reach steady state
        swap_latency_s = server.swap_model(v_next)
        traffic.join()
        _, completed, errors = outcome[0]
        if errors:
            raise errors[0]
        dropped = len(stream) - completed
        swap_window = server.stats()
        cache_after_swap = len(server.cache)

        payload["swap"] = {
            "latency_s": swap_latency_s,
            "requests_in_window": swap_window.requests,
            "dropped": dropped,
            "window_latency_ms": {
                "p50": swap_window.latency_ms_p50,
                "p95": swap_window.latency_ms_p95,
                "p99": swap_window.latency_ms_p99},
            "cache_entries_before": warm_entries,
            "cache_entries_after": cache_after_swap,
            "cache_flushed": cache_after_swap < warm_entries // 2,
            "cache_by_version": swap_window.to_dict()["cache_by_version"],
        }

        # Stage 4a: post-swap steady state on the (still warm) server.
        server.reset_stats()
        post_s = _closed_loop(server, stream, concurrency, k)
        post = server.stats()
        payload["post_swap"] = {
            "seconds": post_s,
            "throughput_rps": len(stream) / post_s,
            "latency_ms": {"mean": post.latency_ms_mean,
                           "p50": post.latency_ms_p50,
                           "p95": post.latency_ms_p95,
                           "p99": post.latency_ms_p99},
            "cache_hit_rate": post.cache_hit_rate,
        }

        # Stage 5: determinism — swapped server vs fresh construction.
        check = sessions[:check_sessions]
        swapped = [np.asarray(r.items, dtype=np.int64)
                   for r in server.recommend_many(check, k=k)]

    # Stage 4b: cold restart — a fresh server on the same checkpoint
    # (empty cache, cold workspaces: everything a restart implies).
    with trainer.serve(registry=registry,
                       metrics_registry=metrics_registry) as cold:
        restart_started = perf_counter()
        cold.swap_model(v_next)
        restart_ready_s = perf_counter() - restart_started
        cold_s = _closed_loop(cold, stream, concurrency, k)
        cold_stats = cold.stats()
        fresh = [np.asarray(r.items, dtype=np.int64)
                 for r in cold.recommend_many(check, k=k)]

    payload["cold_restart"] = {
        "ready_seconds": restart_ready_s,
        "seconds": cold_s,
        "throughput_rps": len(stream) / cold_s,
        "latency_ms": {"mean": cold_stats.latency_ms_mean,
                       "p50": cold_stats.latency_ms_p50,
                       "p95": cold_stats.latency_ms_p95,
                       "p99": cold_stats.latency_ms_p99},
    }
    payload["post_swap_p95_vs_cold_restart"] = (
        payload["post_swap"]["latency_ms"]["p95"]
        / max(payload["cold_restart"]["latency_ms"]["p95"], 1e-9))
    payload["determinism_bit_identical"] = bool(
        len(swapped) == len(fresh)
        and all(np.array_equal(a, b) for a, b in zip(swapped, fresh)))

    # Fleet telemetry over the whole lifecycle (updater rounds + both
    # servers' swaps and request latencies), gated by the SLO set.
    slo_params = dict(slo or {})
    slo_params.setdefault("swap_max_ms", 30_000.0)
    snapshot = metrics_registry.snapshot()
    rolling.record(snapshot)
    metrics_registry.close()
    slos = serving_slos(**slo_params)
    results = evaluate_slos(snapshot, slos)
    win = rolling.window(None)  # full span: serving phases only
    windowed = evaluate_slos(snapshot, slos, window=win)
    burns = [r.burn_rate for r in windowed if r.burn_rate is not None]
    payload["telemetry"] = {
        "snapshot": snapshot.to_dict(),
        "online_rounds": snapshot.counter("online_rounds_total"),
        "online_sessions": snapshot.counter("online_sessions_total"),
        "swaps": snapshot.counter("swaps_total"),
        "slo": [result.to_dict() for result in results],
        "slo_ok": all(result.ok for result in results),
        "window": {
            "available": win is not None,
            "seconds": win.seconds if win is not None else 0.0,
            "slo": [result.to_dict() for result in windowed],
            "slo_ok": all(result.ok for result in windowed),
            "burn_max": max(burns) if burns else 0.0,
        },
    }
    return payload


def format_report(payload: dict) -> str:
    """Human-readable summary of one lifecycle run."""
    ingest = payload["ingest"]
    swap = payload["swap"]
    post = payload["post_swap"]
    cold = payload["cold_restart"]
    lines = [
        f"online bench @ concurrency {payload['concurrency']} "
        f"(k={payload['k']}, v{payload['versions']['base']} -> "
        f"v{payload['versions']['next']})",
        f"  ingest        : {ingest['sessions_per_s']:>8.1f} sess/s "
        f"({ingest['edges_staged']} edges staged, compaction "
        f"{ingest['compact_seconds'] * 1e3:.1f}ms)",
        f"  publish round : {payload['publish']['seconds']:.2f}s "
        f"(fine-tune + checkpoint)",
        f"  hot swap      : {swap['latency_s'] * 1e3:>8.1f} ms latency, "
        f"{swap['requests_in_window']} reqs in window, "
        f"{swap['dropped']} dropped, cache kept "
        f"{swap['cache_entries_after']}/{swap['cache_entries_before']} "
        f"entries",
        f"  post-swap     : p95={post['latency_ms']['p95']:.1f}ms "
        f"({post['throughput_rps']:.0f} req/s)",
        f"  cold restart  : p95={cold['latency_ms']['p95']:.1f}ms "
        f"({cold['throughput_rps']:.0f} req/s, ready in "
        f"{cold['ready_seconds'] * 1e3:.0f}ms)",
        f"  p95 ratio     : {payload['post_swap_p95_vs_cold_restart']:.2f}x "
        f"cold restart",
        f"  deterministic : {payload['determinism_bit_identical']}",
    ]
    tel = payload.get("telemetry", {})
    win = tel.get("window")
    if win and win.get("available"):
        lines.append(
            f"  serve window  : {win['seconds']:.2f}s, "
            f"burn max {win['burn_max']:.3g}, SLO "
            + ("PASS" if win["slo_ok"] else "FAIL"))
    return "\n".join(lines)
