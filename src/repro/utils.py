"""Small shared utilities: seeding and progress logging."""

from __future__ import annotations

import logging
import time
from typing import Iterator, Optional

import numpy as np

logger = logging.getLogger("repro")


def make_rng(seed: Optional[int]) -> np.random.Generator:
    """Construct a seeded generator (``None`` -> nondeterministic)."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: Optional[int], count: int) -> "list[np.random.Generator]":
    """Derive ``count`` independent child generators from one seed."""
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


class Stopwatch:
    """Context manager measuring wall-clock seconds into ``.elapsed``."""

    def __init__(self) -> None:
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


def batched(indices: np.ndarray, batch_size: int) -> Iterator[np.ndarray]:
    """Yield contiguous index chunks of at most ``batch_size``."""
    for start in range(0, len(indices), batch_size):
        yield indices[start:start + batch_size]
