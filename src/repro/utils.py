"""Small shared utilities: seeding, progress logging, repo paths."""

from __future__ import annotations

import logging
import time
from pathlib import Path
from typing import Iterator, Optional

import numpy as np

logger = logging.getLogger("repro")


def repo_root() -> Path:
    """The repository root for a source checkout, else the cwd.

    Benchmark payloads (``BENCH_*.json``) land here so the perf
    trajectory lives next to the code and CI can pick the files up as
    artifacts regardless of the working directory a bench ran from.
    """
    candidate = Path(__file__).resolve().parents[2]
    if (candidate / "src").is_dir() and (candidate / "ROADMAP.md").exists():
        return candidate
    return Path.cwd()


def default_bench_path(name: str) -> str:
    """Default output path for a ``BENCH_<name>.json`` payload."""
    return str(repo_root() / name)


def make_rng(seed: Optional[int]) -> np.random.Generator:
    """Construct a seeded generator (``None`` -> nondeterministic)."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: Optional[int], count: int) -> "list[np.random.Generator]":
    """Derive ``count`` independent child generators from one seed."""
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


class Stopwatch:
    """Context manager measuring wall-clock seconds into ``.elapsed``."""

    def __init__(self) -> None:
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


def batched(indices: np.ndarray, batch_size: int) -> Iterator[np.ndarray]:
    """Yield contiguous index chunks of at most ``batch_size``."""
    for start in range(0, len(indices), batch_size):
        yield indices[start:start + batch_size]
