"""Synthetic MovieLens-like dataset generator (Tables IV/V inventory).

Mirrors :mod:`repro.data.synthetic` but with the movie entity schema:
movies carry genres, a director, actors, a writer, a language, a rating
bucket, and a country.  The paper's MovieLens KG has **no user entity**
(Table V), so the KG builder never adds ``purchase`` edges for this
domain; REKS still works, which the paper uses to argue genericity.

Predictive structure: movies cluster by "franchise" groups that share a
director and overlapping actors inside a genre neighborhood; sessions
walk within franchises (strong) and genres (weak), so metadata paths
``movie -> director/actor/genre -> movie`` predict session continuations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.data.schema import Interaction, MovieLensDataset, MovieMeta
from repro.data.sessions import build_sessions, filter_and_split


@dataclass
class MovieLensPreset:
    """Size/shape knobs for the synthetic MovieLens flavor."""

    name: str
    n_users: int
    n_movies: int
    n_genres: int
    n_directors: int
    n_actors: int
    n_writers: int
    n_languages: int
    n_ratings: int
    n_countries: int
    n_sessions: int
    n_franchises: int
    mean_session_length: float = 3.8
    max_session_length: int = 10
    complement_degree: int = 6
    p_franchise: float = 0.60
    p_genre: float = 0.28
    min_item_support: int = 5


def _scaled(scale: str) -> MovieLensPreset:
    scales = {"tiny": 0.02, "small": 0.08, "medium": 0.25, "paper": 1.0}
    if scale not in scales:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(scales)}")
    s = scales[scale]

    def scaled(x: int, minimum: int) -> int:
        return max(minimum, int(round(x * s)))

    # Paper Table V: 23475 movies, 23 genres, 1481 directors, 1196 actors,
    # 2369 writers, 73 languages, 5 ratings, 11 countries; Table VI: 38016
    # sessions from MovieLens-1M users (~6040).
    return MovieLensPreset(
        name="movielens",
        n_users=scaled(6040, 60),
        n_movies=scaled(23475, 120),
        n_genres=min(23, scaled(23, 6)),
        n_directors=scaled(1481, 12),
        n_actors=scaled(1196, 12),
        n_writers=scaled(2369, 12),
        n_languages=min(73, scaled(73, 4)),
        n_ratings=5,
        n_countries=min(11, scaled(11, 3)),
        n_sessions=scaled(38016, 400),
        n_franchises=scaled(800, 16),
    )


MOVIELENS_PRESETS = {scale: _scaled(scale)
                     for scale in ("tiny", "small", "medium", "paper")}


class MovieLensLikeGenerator:
    """Generate a :class:`MovieLensDataset` from a preset."""

    def __init__(self, scale: str = "small", seed: int = 11) -> None:
        self.preset = _scaled(scale) if isinstance(scale, str) else scale
        self.seed = seed

    def generate(self) -> MovieLensDataset:
        p = self.preset
        rng = np.random.default_rng(self.seed)

        franchise_genre = rng.integers(0, p.n_genres, size=p.n_franchises)
        franchise_director = rng.integers(0, p.n_directors, size=p.n_franchises)
        franchise_writer = rng.integers(0, p.n_writers, size=p.n_franchises)
        franchise_actors = [
            rng.choice(p.n_actors, size=min(4, p.n_actors), replace=False)
            for _ in range(p.n_franchises)
        ]

        movie_franchise = rng.integers(0, p.n_franchises, size=p.n_movies)
        popularity = self._zipf(p.n_movies, rng)

        movies: Dict[int, MovieMeta] = {}
        for raw in range(p.n_movies):
            fr = movie_franchise[raw]
            main_genre = int(franchise_genre[fr])
            extra = rng.integers(0, p.n_genres)
            genres = sorted({main_genre, int(extra)} if rng.random() < 0.4
                            else {main_genre})
            movies[raw + 1] = MovieMeta(
                item_id=raw + 1,
                name=f"movie-{raw + 1}",
                genre_ids=genres,
                director_id=(int(franchise_director[fr]) if rng.random() < 0.8
                             else int(rng.integers(0, p.n_directors))),
                actor_ids=sorted(int(a) for a in rng.choice(
                    franchise_actors[fr], size=min(2, len(franchise_actors[fr])),
                    replace=False)),
                writer_id=(int(franchise_writer[fr]) if rng.random() < 0.7
                           else int(rng.integers(0, p.n_writers))),
                language_id=int(rng.integers(0, p.n_languages)),
                rating_id=int(rng.integers(0, p.n_ratings)),
                country_id=int(rng.integers(0, p.n_countries)),
            )

        franchise_members: List[np.ndarray] = [
            np.where(movie_franchise == f)[0] for f in range(p.n_franchises)
        ]
        genre_members: List[np.ndarray] = [
            np.where(franchise_genre[movie_franchise] == g)[0]
            for g in range(p.n_genres)
        ]

        user_genre_pref = rng.dirichlet(np.full(p.n_genres, 0.3), size=p.n_users)
        interactions = self._simulate(rng, p, user_genre_pref, movie_franchise,
                                      franchise_members, genre_members,
                                      franchise_genre, popularity)

        sessions = build_sessions(interactions)
        split, remap = filter_and_split(
            sessions, min_item_support=p.min_item_support, rng=rng)

        remapped_movies = {}
        item_names = {}
        for old_id, new_id in remap.items():
            meta = movies[old_id]
            remapped_movies[new_id] = MovieMeta(
                item_id=new_id, name=meta.name, genre_ids=meta.genre_ids,
                director_id=meta.director_id, actor_ids=meta.actor_ids,
                writer_id=meta.writer_id, language_id=meta.language_id,
                rating_id=meta.rating_id, country_id=meta.country_id,
            )
            item_names[new_id] = meta.name

        all_sessions = split.train + split.validation + split.test
        kept_interactions = [
            Interaction(s.user_id, item, float(s.day) + i / 100.0)
            for s in all_sessions for i, item in enumerate(s.items)
        ]
        return MovieLensDataset(
            name=p.name,
            domain="movielens",
            n_users=p.n_users,
            n_items=len(remap),
            interactions=kept_interactions,
            sessions=all_sessions,
            split=split,
            item_names=item_names,
            movies=remapped_movies,
            n_genres=p.n_genres,
            n_directors=p.n_directors,
            n_actors=p.n_actors,
            n_writers=p.n_writers,
            n_languages=p.n_languages,
            n_ratings=p.n_ratings,
            n_countries=p.n_countries,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _zipf(n: int, rng: np.random.Generator, exponent: float = 1.05) -> np.ndarray:
        ranks = rng.permutation(n) + 1
        weights = 1.0 / np.power(ranks, exponent)
        return weights / weights.sum()

    @staticmethod
    def _simulate(rng, p: MovieLensPreset, user_genre_pref, movie_franchise,
                  franchise_members, genre_members, franchise_genre,
                  popularity) -> List[Interaction]:
        interactions: List[Interaction] = []
        user_day = np.zeros(p.n_users, dtype=np.int64)
        for _ in range(p.n_sessions):
            user = int(rng.integers(0, p.n_users))
            genre = int(rng.choice(p.n_genres, p=user_genre_pref[user]))
            members = genre_members[genre]
            if len(members) == 0:
                continue
            weights = popularity[members] / popularity[members].sum()
            current = int(rng.choice(members, p=weights))
            length = 2 + min(rng.poisson(max(p.mean_session_length - 2.0, 0.1)),
                             p.max_session_length - 2)
            day = int(user_day[user])
            user_day[user] += 1 + int(rng.integers(0, 4))
            items = [current]
            for _step in range(length - 1):
                roll = rng.random()
                franchise_pool = franchise_members[movie_franchise[current]]
                if roll < p.p_franchise and len(franchise_pool) > 1:
                    nxt = int(rng.choice(franchise_pool))
                elif roll < p.p_franchise + p.p_genre:
                    pool = genre_members[int(
                        franchise_genre[movie_franchise[current]])]
                    nxt = int(rng.choice(pool)) if len(pool) else current
                else:
                    nxt = int(rng.integers(0, p.n_movies))
                if nxt == current:
                    continue
                items.append(nxt)
                current = nxt
            if len(items) < 2:
                continue
            for offset, raw in enumerate(items):
                interactions.append(Interaction(
                    user_id=user, item_id=raw + 1,
                    timestamp=float(day) + offset / 100.0,
                ))
        return interactions
