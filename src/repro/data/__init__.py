"""Dataset substrate: synthetic Amazon/MovieLens generators and sessions.

The paper evaluates on Amazon Beauty / Cellphones / Baby and on
MovieLens-1M joined with a Satori knowledge graph.  Those dumps are not
available offline, so this package generates synthetic datasets with the
same entity/relation inventory and — crucially — the same *predictive
structure*: next-session-items correlate with catalog metadata and
co-purchase links, which is the signal REKS's KG paths exploit.
"""

from repro.data.schema import (
    AmazonDataset,
    Interaction,
    MovieMeta,
    MovieLensDataset,
    ProductMeta,
    Session,
    SessionDataset,
    SessionSplit,
)
from repro.data.synthetic import AmazonLikeGenerator, AMAZON_PRESETS
from repro.data.movielens import MovieLensLikeGenerator, MOVIELENS_PRESETS
from repro.data.real import load_amazon, load_movielens
from repro.data.sessions import build_sessions, filter_and_split
from repro.data.loader import SessionBatch, SessionBatcher
from repro.data.stats import (
    dataset_statistics,
    entity_statistics,
    relation_statistics,
)

__all__ = [
    "AmazonDataset",
    "Interaction",
    "MovieMeta",
    "MovieLensDataset",
    "ProductMeta",
    "Session",
    "SessionDataset",
    "SessionSplit",
    "AmazonLikeGenerator",
    "AMAZON_PRESETS",
    "MovieLensLikeGenerator",
    "MOVIELENS_PRESETS",
    "build_sessions",
    "filter_and_split",
    "SessionBatch",
    "SessionBatcher",
    "dataset_statistics",
    "entity_statistics",
    "relation_statistics",
    "load_amazon",
    "load_movielens",
]
