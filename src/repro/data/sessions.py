"""Sessionization, support filtering, and the 75/10/15 split.

Follows the paper's protocol (§IV-A-1): interactions of one user within
one day form a session; items with fewer than ``min_item_support``
interactions and sessions shorter than 2 are dropped (iterated to a
fixed point, since dropping items can shorten sessions below 2); the
surviving sessions are randomly split 75% / 10% / 15%.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.schema import Interaction, Session, SessionSplit


def build_sessions(interactions: Sequence[Interaction]) -> List[Session]:
    """Group interactions into (user, day) sessions, ordered by time."""
    grouped: Dict[Tuple[int, int], List[Interaction]] = defaultdict(list)
    for inter in interactions:
        grouped[(inter.user_id, int(inter.timestamp))].append(inter)
    sessions: List[Session] = []
    for (user, day), events in sorted(grouped.items()):
        events.sort(key=lambda e: e.timestamp)
        items = [e.item_id for e in events]
        sessions.append(Session(items=items, user_id=user, day=day))
    return sessions


def filter_sessions(sessions: Sequence[Session], min_item_support: int = 5,
                    min_session_length: int = 2) -> Tuple[List[Session], Dict[int, int]]:
    """Iteratively drop rare items and short sessions; remap ids to 1..n.

    Returns the filtered (remapped) sessions and the old->new item map.
    """
    current = [Session(list(s.items), s.user_id, s.day) for s in sessions]
    while True:
        support: Counter = Counter()
        for session in current:
            support.update(session.items)
        keep = {item for item, count in support.items() if count >= min_item_support}
        next_sessions: List[Session] = []
        changed = False
        for session in current:
            items = [i for i in session.items if i in keep]
            if len(items) != len(session.items):
                changed = True
            if len(items) >= min_session_length:
                next_sessions.append(Session(items, session.user_id, session.day))
            else:
                changed = True
        current = next_sessions
        if not changed:
            break
    old_ids = sorted({item for s in current for item in s.items})
    remap = {old: new for new, old in enumerate(old_ids, start=1)}
    remapped = [
        Session([remap[i] for i in s.items], s.user_id, s.day) for s in current
    ]
    return remapped, remap


def split_sessions(sessions: Sequence[Session],
                   ratios: Tuple[float, float, float] = (0.75, 0.10, 0.15),
                   rng: Optional[np.random.Generator] = None) -> SessionSplit:
    """Randomly partition sessions into train/validation/test."""
    if abs(sum(ratios) - 1.0) > 1e-6:
        raise ValueError(f"split ratios must sum to 1, got {ratios}")
    rng = rng or np.random.default_rng(0)
    order = rng.permutation(len(sessions))
    n_train = int(round(ratios[0] * len(sessions)))
    n_val = int(round(ratios[1] * len(sessions)))
    train_idx = order[:n_train]
    val_idx = order[n_train:n_train + n_val]
    test_idx = order[n_train + n_val:]
    sessions = list(sessions)
    return SessionSplit(
        train=[sessions[i] for i in train_idx],
        validation=[sessions[i] for i in val_idx],
        test=[sessions[i] for i in test_idx],
    )


def filter_and_split(sessions: Sequence[Session], min_item_support: int = 5,
                     ratios: Tuple[float, float, float] = (0.75, 0.10, 0.15),
                     rng: Optional[np.random.Generator] = None
                     ) -> Tuple[SessionSplit, Dict[int, int]]:
    """Convenience pipeline: filter then split."""
    filtered, remap = filter_sessions(sessions, min_item_support=min_item_support)
    return split_sessions(filtered, ratios=ratios, rng=rng), remap
