"""Synthetic Amazon-like catalog and session generator.

The real Amazon Beauty/Cellphones/Baby dumps are unavailable offline, so
this module builds a catalog whose *statistical structure* matches what
the REKS knowledge graph exploits (see DESIGN.md §3):

* products live in latent **clusters** nested inside **topics**;
* categories and brands align with topics/clusters, so metadata paths
  (``belong_to``/``produced_by``) connect substitutable products;
* each cluster owns a pool of **related-product** entities, and products
  link into their cluster pool via ``also_bought`` / ``also_viewed`` /
  ``bought_together``, so 2-hop related-product paths connect products
  that co-occur in sessions;
* sessions are random walks biased toward the current item's complement
  list (same cluster), so the *last* item genuinely predicts the next —
  the property motivating REKS's last-item starting point.

Each preset (beauty / cellphones / baby) scales the entity ratios of
paper Tables II–III; "baby" keeps the quirk of having a single category.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.data.schema import AmazonDataset, Interaction, ProductMeta
from repro.data.sessions import build_sessions, filter_and_split


@dataclass
class AmazonPreset:
    """Size/shape knobs for one synthetic Amazon flavor."""

    name: str
    n_users: int
    n_products: int
    n_brands: int
    n_categories: int
    n_related: int
    n_sessions: int
    n_topics: int = 8
    clusters_per_topic: int = 4
    mean_session_length: float = 3.5
    max_session_length: int = 10
    complement_degree: int = 6
    also_bought_degree: int = 8
    also_viewed_degree: int = 5
    bought_together_degree: int = 2
    p_complement: float = 0.62
    p_cluster: float = 0.22
    p_topic: float = 0.12
    zipf_exponent: float = 1.1
    min_item_support: int = 5
    seed_offset: int = 0


def _scaled(flavor: str, scale: str) -> AmazonPreset:
    """Presets mirror Table II/III entity ratios at several scales."""
    scales = {
        "tiny": 0.012,
        "small": 0.055,
        "medium": 0.17,
        "paper": 1.0,
    }
    if scale not in scales:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(scales)}")
    s = scales[scale]
    base = {
        # name: (users, products, brands, categories, related, sessions)
        "beauty": (15438, 11673, 2008, 238, 160281, 20830),
        "cellphones": (17933, 9805, 904, 107, 96674, 24013),
        "baby": (13655, 6860, 716, 1, 68168, 18907),
    }
    if flavor not in base:
        raise ValueError(f"unknown flavor {flavor!r}; choose from {sorted(base)}")
    users, products, brands, categories, related, sessions = base[flavor]

    def scaled(x: int, minimum: int) -> int:
        return max(minimum, int(round(x * s)))

    return AmazonPreset(
        name=flavor,
        n_users=scaled(users, 40),
        n_products=scaled(products, 60),
        n_brands=scaled(brands, 8),
        n_categories=1 if categories == 1 else scaled(categories, 4),
        # Related-product pools grow too fast at paper ratios; cap their
        # multiple of products so the small KG stays path-dense.
        n_related=min(scaled(related, 80), 4 * scaled(products, 60)),
        n_sessions=scaled(sessions, 300),
        seed_offset={"beauty": 0, "cellphones": 1, "baby": 2}[flavor],
    )


AMAZON_PRESETS = {
    (flavor, scale): _scaled(flavor, scale)
    for flavor in ("beauty", "cellphones", "baby")
    for scale in ("tiny", "small", "medium", "paper")
}


class AmazonLikeGenerator:
    """Generate an :class:`AmazonDataset` from a preset.

    Parameters
    ----------
    preset:
        Either an :class:`AmazonPreset` or a flavor name plus ``scale``.
    seed:
        Master seed; every random choice derives from it.
    """

    def __init__(self, preset="beauty", scale: str = "small",
                 seed: int = 7) -> None:
        if isinstance(preset, str):
            preset = _scaled(preset, scale)
        self.preset = preset
        self.seed = seed + preset.seed_offset

    # ------------------------------------------------------------------
    def generate(self) -> AmazonDataset:
        p = self.preset
        rng = np.random.default_rng(self.seed)

        n_clusters = p.n_topics * p.clusters_per_topic
        cluster_topic = np.repeat(np.arange(p.n_topics), p.clusters_per_topic)

        # --- catalog ---------------------------------------------------
        product_cluster = rng.integers(0, n_clusters, size=p.n_products)
        product_topic = cluster_topic[product_cluster]
        popularity = self._zipf_weights(p.n_products, p.zipf_exponent, rng)

        category_topic = (np.arange(p.n_categories) % p.n_topics
                          if p.n_categories > 1 else np.zeros(1, dtype=np.int64))
        brand_topic = np.arange(p.n_brands) % p.n_topics
        related_cluster = rng.integers(0, n_clusters, size=p.n_related)

        product_category = self._assign_aligned(
            product_topic, category_topic, rng, loyal=0.9)
        product_brand = self._assign_aligned(
            product_topic, brand_topic, rng, loyal=0.75)

        cluster_members: List[np.ndarray] = [
            np.where(product_cluster == c)[0] for c in range(n_clusters)
        ]
        topic_members: List[np.ndarray] = [
            np.where(product_topic == t)[0] for t in range(p.n_topics)
        ]
        cluster_related: List[np.ndarray] = [
            np.where(related_cluster == c)[0] for c in range(n_clusters)
        ]

        complements = self._sample_complements(
            product_cluster, cluster_members, popularity, p.complement_degree, rng)

        products: Dict[int, ProductMeta] = {}
        for raw in range(p.n_products):
            pool = cluster_related[product_cluster[raw]]
            topic_pool = np.concatenate(
                [cluster_related[c] for c in range(n_clusters)
                 if cluster_topic[c] == product_topic[raw]]
            ) if p.n_related else np.array([], dtype=np.int64)
            products[raw + 1] = ProductMeta(
                item_id=raw + 1,
                name=f"{p.name}-product-{raw + 1}",
                brand_id=int(product_brand[raw]),
                category_id=int(product_category[raw]),
                also_bought=self._pick(pool, p.also_bought_degree, rng),
                also_viewed=self._pick(topic_pool, p.also_viewed_degree, rng),
                bought_together=self._pick(pool, p.bought_together_degree, rng),
            )

        # --- users and sessions -----------------------------------------
        user_topic_pref = rng.dirichlet(np.full(p.n_topics, 0.35), size=p.n_users)
        interactions = self._simulate_sessions(
            rng, user_topic_pref, cluster_topic, cluster_members, topic_members,
            popularity, complements, product_cluster, product_topic)

        sessions = build_sessions(interactions)
        kept_sessions, remap = filter_and_split(
            sessions, min_item_support=p.min_item_support, rng=rng)

        # Remap product metadata to surviving item ids.
        remapped_products = {}
        item_names = {}
        for old_id, new_id in remap.items():
            meta = products[old_id]
            remapped_products[new_id] = ProductMeta(
                item_id=new_id,
                name=meta.name,
                brand_id=meta.brand_id,
                category_id=meta.category_id,
                also_bought=meta.also_bought,
                also_viewed=meta.also_viewed,
                bought_together=meta.bought_together,
            )
            item_names[new_id] = meta.name

        all_sessions = (kept_sessions.train + kept_sessions.validation
                        + kept_sessions.test)
        kept_interactions = [
            Interaction(s.user_id, item, float(s.day) + i / 100.0)
            for s in all_sessions for i, item in enumerate(s.items)
        ]
        return AmazonDataset(
            name=p.name,
            domain="amazon",
            n_users=p.n_users,
            n_items=len(remap),
            interactions=kept_interactions,
            sessions=all_sessions,
            split=kept_sessions,
            item_names=item_names,
            products=remapped_products,
            n_brands=p.n_brands,
            n_categories=p.n_categories,
            n_related=p.n_related,
            brand_names={b: f"{p.name}-brand-{b}" for b in range(p.n_brands)},
            category_names={c: f"{p.name}-category-{c}"
                            for c in range(p.n_categories)},
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _zipf_weights(n: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
        ranks = rng.permutation(n) + 1
        weights = 1.0 / np.power(ranks, exponent)
        return weights / weights.sum()

    @staticmethod
    def _assign_aligned(item_topic: np.ndarray, attr_topic: np.ndarray,
                        rng: np.random.Generator, loyal: float) -> np.ndarray:
        """Assign each item an attribute, usually one matching its topic."""
        n_attr = len(attr_topic)
        out = np.empty(len(item_topic), dtype=np.int64)
        by_topic = {t: np.where(attr_topic == t)[0] for t in np.unique(attr_topic)}
        for i, topic in enumerate(item_topic):
            pool = by_topic.get(topic)
            if pool is not None and len(pool) and rng.random() < loyal:
                out[i] = rng.choice(pool)
            else:
                out[i] = rng.integers(0, n_attr)
        return out

    @staticmethod
    def _pick(pool: np.ndarray, k: int, rng: np.random.Generator) -> List[int]:
        if len(pool) == 0 or k == 0:
            return []
        k = min(k, len(pool))
        return sorted(int(x) for x in rng.choice(pool, size=k, replace=False))

    @staticmethod
    def _sample_complements(product_cluster: np.ndarray,
                            cluster_members: List[np.ndarray],
                            popularity: np.ndarray,
                            degree: int,
                            rng: np.random.Generator) -> List[np.ndarray]:
        complements: List[np.ndarray] = []
        for raw, cluster in enumerate(product_cluster):
            members = cluster_members[cluster]
            others = members[members != raw]
            if len(others) == 0:
                complements.append(np.array([raw], dtype=np.int64))
                continue
            weights = popularity[others]
            weights = weights / weights.sum()
            k = min(degree, len(others))
            chosen = rng.choice(others, size=k, replace=False, p=weights)
            complements.append(np.asarray(chosen, dtype=np.int64))
        return complements

    def _simulate_sessions(self, rng, user_topic_pref, cluster_topic,
                           cluster_members, topic_members, popularity,
                           complements, product_cluster, product_topic
                           ) -> List[Interaction]:
        p = self.preset
        interactions: List[Interaction] = []
        n_clusters = len(cluster_topic)
        user_day = np.zeros(p.n_users, dtype=np.int64)
        for _ in range(p.n_sessions):
            user = int(rng.integers(0, p.n_users))
            topic = int(rng.choice(p.n_topics, p=user_topic_pref[user]))
            topic_clusters = np.where(cluster_topic == topic)[0]
            cluster = int(rng.choice(topic_clusters))
            members = cluster_members[cluster]
            if len(members) == 0:
                members = topic_members[topic]
            if len(members) == 0:
                continue
            length = 2 + min(rng.poisson(max(p.mean_session_length - 2.0, 0.1)),
                             p.max_session_length - 2)
            weights = popularity[members] / popularity[members].sum()
            current = int(rng.choice(members, p=weights))
            day = int(user_day[user])
            user_day[user] += 1 + int(rng.integers(0, 3))
            items = [current]
            for _step in range(length - 1):
                roll = rng.random()
                if roll < p.p_complement and len(complements[current]):
                    nxt = int(rng.choice(complements[current]))
                elif roll < p.p_complement + p.p_cluster:
                    pool = cluster_members[product_cluster[current]]
                    nxt = int(rng.choice(pool)) if len(pool) else current
                elif roll < p.p_complement + p.p_cluster + p.p_topic:
                    pool = topic_members[product_topic[current]]
                    nxt = int(rng.choice(pool)) if len(pool) else current
                else:
                    nxt = int(rng.integers(0, p.n_products))
                if nxt == current:
                    continue
                items.append(nxt)
                current = nxt
            if len(items) < 2:
                continue
            for offset, raw_item in enumerate(items):
                interactions.append(Interaction(
                    user_id=user,
                    item_id=raw_item + 1,  # item ids are 1-based
                    timestamp=float(day) + offset / 100.0,
                ))
        return interactions
