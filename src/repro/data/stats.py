"""Dataset and KG statistics mirroring paper Tables II–VI."""

from __future__ import annotations

from collections import Counter
from typing import Dict, TYPE_CHECKING

from repro.data.schema import (
    AmazonDataset,
    MovieLensDataset,
    SessionDataset,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kg.graph import KnowledgeGraph


def relation_statistics(kg: "KnowledgeGraph") -> Dict[str, int]:
    """Edge counts per relation name (Tables II and IV).

    Counts directed edges, which matches the paper's convention of
    reporting each bidirectional metadata relation once per direction.
    """
    counts: Counter = Counter()
    for rel_id, name in enumerate(kg.relation_names):
        counts[name] += int(kg.count_edges_for_relation(rel_id))
    return dict(counts)


def entity_statistics(kg: "KnowledgeGraph") -> Dict[str, int]:
    """Entity counts per type (Tables III and V)."""
    counts: Counter = Counter()
    for type_name in kg.entity_type_names:
        counts[type_name] = kg.count_entities_of_type(type_name)
    return dict(counts)


def dataset_statistics(dataset: SessionDataset,
                       kg: "KnowledgeGraph" = None) -> Dict[str, object]:
    """Session-level statistics (Table VI)."""
    stats: Dict[str, object] = {
        "dataset": dataset.name,
        "#sessions": len(dataset.sessions),
        "#train sessions": len(dataset.split.train),
        "#validation sessions": len(dataset.split.validation),
        "#test sessions": len(dataset.split.test),
        "average length": round(dataset.average_session_length, 2),
        "#items": dataset.n_items,
        "#users": dataset.n_users,
    }
    if kg is not None:
        stats["#entities"] = kg.num_entities
        stats["#relations"] = kg.num_triples
    return stats


def format_table(rows, headers=None) -> str:
    """Plain-text table renderer used by the benchmark harness."""
    rows = [[str(c) for c in row] for row in rows]
    if headers:
        rows = [list(map(str, headers))] + rows
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = []
    for r, row in enumerate(rows):
        line = "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        lines.append(line.rstrip())
        if headers and r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
