"""Loaders for the real dataset formats the paper uses.

The benchmarks run on synthetic stand-ins (no network access), but a
user who has the actual dumps can feed them through the identical
pipeline:

* **Amazon reviews** (jmcauley.ucsd.edu): a reviews file of JSON lines
  with ``reviewerID``, ``asin``, ``unixReviewTime``; a metadata file of
  JSON lines with ``asin``, ``brand``, ``categories``, ``related``
  (``also_bought`` / ``also_viewed`` / ``bought_together`` ASIN lists).
* **MovieLens-1M** (grouplens.org): ``ratings.dat`` with
  ``UserID::MovieID::Rating::Timestamp`` and ``movies.dat`` with
  ``MovieID::Title::Genres``.

Both loaders sessionize by (user, day), apply the paper's 5-support /
length-2 filters, and produce the same dataclasses as the synthetic
generators, so ``build_kg`` and everything downstream work unchanged.
MovieLens attributes beyond genre (director, actors, ...) came from
Microsoft Satori in the paper; the loader accepts an optional side
table for them and otherwise omits those relations.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.data.schema import (
    AmazonDataset,
    Interaction,
    MovieLensDataset,
    MovieMeta,
    ProductMeta,
)
from repro.data.sessions import build_sessions, filter_and_split

SECONDS_PER_DAY = 86_400.0


def _read_json_lines(path) -> Iterable[dict]:
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            # The Amazon dumps are python-literal-ish; proper JSON is
            # accepted first, eval-style fallback is NOT attempted.
            yield json.loads(line)


def load_amazon(reviews_path, meta_path, name: str = "amazon",
                min_item_support: int = 5,
                split_seed: int = 0) -> AmazonDataset:
    """Load an Amazon category dump into an :class:`AmazonDataset`."""
    reviews = list(_read_json_lines(reviews_path))
    metas = {m["asin"]: m for m in _read_json_lines(meta_path)}

    users: Dict[str, int] = {}
    items: Dict[str, int] = {}
    interactions: List[Interaction] = []
    for review in reviews:
        asin = review["asin"]
        if asin not in metas:
            continue
        user = users.setdefault(review["reviewerID"], len(users))
        item = items.setdefault(asin, len(items) + 1)  # 1-based
        interactions.append(Interaction(
            user_id=user, item_id=item,
            timestamp=float(review["unixReviewTime"]) / SECONDS_PER_DAY))

    sessions = build_sessions(interactions)
    split, remap = filter_and_split(
        sessions, min_item_support=min_item_support,
        rng=np.random.default_rng(split_seed))

    brands: Dict[str, int] = {}
    categories: Dict[str, int] = {}
    related: Dict[str, int] = {}
    asin_of_item = {v: k for k, v in items.items()}

    def related_ids(meta: dict, key: str) -> List[int]:
        out = []
        for asin in meta.get("related", {}).get(key, []):
            out.append(related.setdefault(asin, len(related)))
        return out

    products: Dict[int, ProductMeta] = {}
    item_names: Dict[int, str] = {}
    for old_id, new_id in remap.items():
        meta = metas[asin_of_item[old_id]]
        brand = brands.setdefault(meta.get("brand") or "unknown",
                                  len(brands))
        cats = meta.get("categories") or [["unknown"]]
        leaf = cats[0][-1] if cats and cats[0] else "unknown"
        category = categories.setdefault(leaf, len(categories))
        title = meta.get("title") or meta["asin"]
        products[new_id] = ProductMeta(
            item_id=new_id, name=title, brand_id=brand,
            category_id=category,
            also_bought=related_ids(meta, "also_bought"),
            also_viewed=related_ids(meta, "also_viewed"),
            bought_together=related_ids(meta, "bought_together"),
        )
        item_names[new_id] = title

    all_sessions = split.train + split.validation + split.test
    kept = [Interaction(s.user_id, item, float(s.day) + i / 100.0)
            for s in all_sessions for i, item in enumerate(s.items)]
    return AmazonDataset(
        name=name, domain="amazon", n_users=len(users),
        n_items=len(remap), interactions=kept, sessions=all_sessions,
        split=split, item_names=item_names, products=products,
        n_brands=max(len(brands), 1), n_categories=max(len(categories), 1),
        n_related=max(len(related), 1),
        brand_names={v: k for k, v in brands.items()},
        category_names={v: k for k, v in categories.items()},
    )


def load_movielens(ratings_path, movies_path,
                   satori_path: Optional[str] = None,
                   min_item_support: int = 5,
                   split_seed: int = 0) -> MovieLensDataset:
    """Load MovieLens-1M ``.dat`` files into a :class:`MovieLensDataset`.

    ``satori_path`` optionally points to a JSON-lines side table with
    per-movie ``director`` / ``actors`` / ``writer`` / ``language`` /
    ``country`` attributes (the paper extracted these from Microsoft
    Satori); without it only genre and rating-bucket relations exist.
    """
    genre_ids: Dict[str, int] = {}
    raw_meta: Dict[int, dict] = {}
    with open(movies_path, encoding="latin-1") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            movie_id, title, genres = line.split("::")
            raw_meta[int(movie_id)] = {
                "title": title,
                "genres": [genre_ids.setdefault(g, len(genre_ids))
                           for g in genres.split("|")],
            }

    satori: Dict[int, dict] = {}
    directors: Dict[str, int] = {}
    actors: Dict[str, int] = {}
    writers: Dict[str, int] = {}
    languages: Dict[str, int] = {}
    countries: Dict[str, int] = {}
    if satori_path:
        for row in _read_json_lines(satori_path):
            satori[int(row["movie_id"])] = row

    users: Dict[int, int] = {}
    items: Dict[int, int] = {}
    interactions: List[Interaction] = []
    ratings_sum: Dict[int, float] = {}
    ratings_count: Dict[int, int] = {}
    with open(ratings_path, encoding="latin-1") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            user_raw, movie_raw, rating, ts = line.split("::")
            movie = int(movie_raw)
            if movie not in raw_meta:
                continue
            user = users.setdefault(int(user_raw), len(users))
            item = items.setdefault(movie, len(items) + 1)
            interactions.append(Interaction(
                user_id=user, item_id=item,
                timestamp=float(ts) / SECONDS_PER_DAY))
            ratings_sum[item] = ratings_sum.get(item, 0.0) + float(rating)
            ratings_count[item] = ratings_count.get(item, 0) + 1

    sessions = build_sessions(interactions)
    split, remap = filter_and_split(
        sessions, min_item_support=min_item_support,
        rng=np.random.default_rng(split_seed))

    movie_of_item = {v: k for k, v in items.items()}
    movies: Dict[int, MovieMeta] = {}
    item_names: Dict[int, str] = {}
    for old_id, new_id in remap.items():
        movie = movie_of_item[old_id]
        meta = raw_meta[movie]
        side = satori.get(movie, {})
        mean_rating = ratings_sum[old_id] / ratings_count[old_id]
        movies[new_id] = MovieMeta(
            item_id=new_id, name=meta["title"],
            genre_ids=meta["genres"],
            director_id=(directors.setdefault(side["director"],
                                              len(directors))
                         if side.get("director") else None),
            actor_ids=[actors.setdefault(a, len(actors))
                       for a in side.get("actors", [])],
            writer_id=(writers.setdefault(side["writer"], len(writers))
                       if side.get("writer") else None),
            language_id=(languages.setdefault(side["language"],
                                              len(languages))
                         if side.get("language") else None),
            rating_id=int(np.clip(round(mean_rating), 1, 5)) - 1,
            country_id=(countries.setdefault(side["country"],
                                             len(countries))
                        if side.get("country") else None),
        )
        item_names[new_id] = meta["title"]

    all_sessions = split.train + split.validation + split.test
    kept = [Interaction(s.user_id, item, float(s.day) + i / 100.0)
            for s in all_sessions for i, item in enumerate(s.items)]
    return MovieLensDataset(
        name="movielens", domain="movielens", n_users=len(users),
        n_items=len(remap), interactions=kept, sessions=all_sessions,
        split=split, item_names=item_names, movies=movies,
        n_genres=max(len(genre_ids), 1),
        n_directors=max(len(directors), 1),
        n_actors=max(len(actors), 1),
        n_writers=max(len(writers), 1),
        n_languages=max(len(languages), 1),
        n_ratings=5,
        n_countries=max(len(countries), 1),
    )
