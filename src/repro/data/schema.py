"""Dataset containers shared by the generators, sessionizer, and KG builder.

Item ids are 1-based everywhere (0 is the padding index used by the
session batcher and the model embedding tables).  User, brand, category
and related-product ids are 0-based within their own namespaces; the KG
builder assigns globally unique entity ids per type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class Interaction:
    """One user-item interaction event."""

    user_id: int
    item_id: int
    timestamp: float  # fractional days since epoch of the dataset


@dataclass
class ProductMeta:
    """Amazon-style product metadata (Table II/III entity inventory)."""

    item_id: int
    name: str
    brand_id: int
    category_id: int
    also_bought: List[int] = field(default_factory=list)
    also_viewed: List[int] = field(default_factory=list)
    bought_together: List[int] = field(default_factory=list)


@dataclass
class MovieMeta:
    """MovieLens-style movie metadata (Table IV/V entity inventory)."""

    item_id: int
    name: str
    genre_ids: List[int] = field(default_factory=list)
    director_id: Optional[int] = None
    actor_ids: List[int] = field(default_factory=list)
    writer_id: Optional[int] = None
    language_id: Optional[int] = None
    rating_id: Optional[int] = None
    country_id: Optional[int] = None


@dataclass
class Session:
    """An (anonymous) session: ordered item ids plus provenance."""

    items: List[int]
    user_id: int
    day: int

    def __len__(self) -> int:
        return len(self.items)

    @property
    def prefix(self) -> List[int]:
        """All items but the last (the model input)."""
        return self.items[:-1]

    @property
    def target(self) -> int:
        """The last item (the prediction target)."""
        return self.items[-1]


@dataclass
class SessionSplit:
    """Train/validation/test partition of sessions."""

    train: List[Session]
    validation: List[Session]
    test: List[Session]

    def __iter__(self):
        return iter((self.train, self.validation, self.test))


@dataclass
class SessionDataset:
    """Everything downstream components need about one dataset."""

    name: str
    domain: str  # "amazon" or "movielens"
    n_users: int
    n_items: int  # item ids are 1..n_items
    interactions: List[Interaction]
    sessions: List[Session]
    split: SessionSplit
    item_names: Dict[int, str] = field(default_factory=dict)

    @property
    def average_session_length(self) -> float:
        if not self.sessions:
            return 0.0
        return sum(len(s) for s in self.sessions) / len(self.sessions)


@dataclass
class AmazonDataset(SessionDataset):
    """Session dataset plus Amazon-style metadata."""

    products: Dict[int, ProductMeta] = field(default_factory=dict)
    n_brands: int = 0
    n_categories: int = 0
    n_related: int = 0
    brand_names: Dict[int, str] = field(default_factory=dict)
    category_names: Dict[int, str] = field(default_factory=dict)


@dataclass
class MovieLensDataset(SessionDataset):
    """Session dataset plus MovieLens-style metadata."""

    movies: Dict[int, MovieMeta] = field(default_factory=dict)
    n_genres: int = 0
    n_directors: int = 0
    n_actors: int = 0
    n_writers: int = 0
    n_languages: int = 0
    n_ratings: int = 0
    n_countries: int = 0


def validate_dataset(dataset: SessionDataset) -> List[str]:
    """Sanity-check invariants; returns a list of problems (empty = ok)."""
    problems: List[str] = []
    for session in dataset.sessions:
        if len(session) < 2:
            problems.append(f"session shorter than 2: {session}")
        for item in session.items:
            if not 1 <= item <= dataset.n_items:
                problems.append(f"item id {item} out of range 1..{dataset.n_items}")
    split_total = (len(dataset.split.train) + len(dataset.split.validation)
                   + len(dataset.split.test))
    if split_total != len(dataset.sessions):
        problems.append(
            f"split sizes {split_total} != total sessions {len(dataset.sessions)}"
        )
    return problems
