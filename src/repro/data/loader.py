"""Batching of sessions for the encoders and the REKS agent.

Each batch carries the padded item matrix, a validity mask, the last
real item of every prefix (the REKS path starting point), the session's
user id (for the ``start_from="user"`` ablation) and the target item.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.data.schema import Session

PAD = 0


@dataclass
class SessionBatch:
    """One minibatch of session prefixes and next-item targets."""

    items: np.ndarray      # (B, T) int64, right-padded with 0
    mask: np.ndarray       # (B, T) float32, 1 for real positions
    lengths: np.ndarray    # (B,) int64
    last_items: np.ndarray  # (B,) int64 — last item of each prefix
    targets: np.ndarray    # (B,) int64 — ground-truth next item
    users: np.ndarray      # (B,) int64

    @property
    def batch_size(self) -> int:
        return self.items.shape[0]


def collate_examples(examples: Sequence[tuple],
                     max_length: int,
                     width: Optional[int] = None) -> SessionBatch:
    """Pad a list of ``(prefix_items, target, user_id)`` examples.

    The single collation routine shared by :class:`SessionBatcher` and
    the serving layer's micro-batcher, so a coalesced micro-batch is
    laid out bit-identically to an offline batch of the same sessions.

    ``width`` (optional) pins the padded length instead of using the
    batch max.  Per-row encoder/walk outputs are bit-identical across
    batches only at equal padded width, so the shared-computation
    serving paths pass the *flush* width when walking a subset of a
    flush's rows (memo misses) — the subset then reproduces exactly
    what the full flush would have computed.  Must be >= the longest
    truncated prefix; ``None`` keeps the historical batch-max layout.
    """
    prefixes = [ex[0][-max_length:] for ex in examples]
    lengths = np.array([len(p) for p in prefixes], dtype=np.int64)
    width = int(lengths.max()) if width is None else int(width)
    if width < int(lengths.max()):
        raise ValueError(f"width {width} < longest prefix "
                         f"{int(lengths.max())}")
    batch = len(examples)
    items = np.zeros((batch, width), dtype=np.int64)
    mask = np.zeros((batch, width), dtype=np.float32)
    for row, prefix in enumerate(prefixes):
        items[row, :len(prefix)] = prefix
        mask[row, :len(prefix)] = 1.0
    return SessionBatch(
        items=items,
        mask=mask,
        lengths=lengths,
        last_items=np.array([p[-1] for p in prefixes], dtype=np.int64),
        targets=np.array([ex[1] for ex in examples], dtype=np.int64),
        users=np.array([ex[2] for ex in examples], dtype=np.int64),
    )


class SessionBatcher:
    """Iterate padded minibatches over a list of sessions.

    Parameters
    ----------
    sessions:
        Source sessions; each contributes (prefix, target) where the
        prefix is everything but the last item.
    batch_size:
        Maximum sessions per batch.
    max_length:
        Prefixes longer than this keep only their most recent items.
    augment:
        When True, every session of length L also contributes the
        shorter prefixes (items[:2]->items[2], ...), the standard SR
        training augmentation.
    """

    def __init__(self, sessions: Sequence[Session], batch_size: int = 128,
                 max_length: int = 10, augment: bool = False,
                 shuffle: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.batch_size = batch_size
        self.max_length = max_length
        self.shuffle = shuffle
        self.rng = rng or np.random.default_rng(0)
        self._examples: List[tuple] = []
        for session in sessions:
            items = session.items
            if len(items) < 2:
                continue
            if augment:
                for cut in range(1, len(items)):
                    self._examples.append((items[:cut], items[cut], session.user_id))
            else:
                self._examples.append((items[:-1], items[-1], session.user_id))

    def __len__(self) -> int:
        return (len(self._examples) + self.batch_size - 1) // self.batch_size

    @property
    def num_examples(self) -> int:
        return len(self._examples)

    def __iter__(self) -> Iterator[SessionBatch]:
        order = np.arange(len(self._examples))
        if self.shuffle:
            self.rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            chunk = [self._examples[i] for i in order[start:start + self.batch_size]]
            yield self._collate(chunk)

    def _collate(self, examples: List[tuple]) -> SessionBatch:
        return collate_examples(examples, self.max_length)
